// Lock-free pool of proxy MPI_Request objects (paper Section 3.1/3.3).
//
// A nonblocking offloaded call must return a request handle before the
// offload thread has issued the real MPI call, so the library hands out
// slots from this pre-allocated pool; the slot index *is* the application's
// MPI_Request. The free list is an array-based Treiber stack whose head
// packs a 32-bit ABA tag next to the 32-bit slot index, making alloc/free
// safe for concurrent application threads (MPI_THREAD_MULTIPLE).
//
// Completion protocol: the offload thread writes the Status, then stores
// `done` with release; application threads spin on `done` with acquire.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mpi/types.hpp"

namespace core {

class RequestPool {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  explicit RequestPool(std::uint32_t capacity) : slots_(capacity) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      slots_[i].next.store(i + 1 < capacity ? i + 1 : kNil,
                           std::memory_order_relaxed);
    }
    head_.store(pack(0, 0), std::memory_order_relaxed);
  }

  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Pop a free slot; returns kNil when exhausted.
  std::uint32_t alloc() {
    std::uint64_t h = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = index_of(h);
      if (idx == kNil) return kNil;
      const std::uint32_t next = slots_[idx].next.load(std::memory_order_relaxed);
      const std::uint64_t nh = pack(next, tag_of(h) + 1);
      if (head_.compare_exchange_weak(h, nh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        slots_[idx].done.store(0, std::memory_order_relaxed);
        slots_[idx].status = smpi::Status{};
        return idx;
      }
    }
  }

  /// Return a slot to the pool. The caller must own it (completed request).
  void free(std::uint32_t idx) {
    if (idx >= slots_.size()) throw std::out_of_range("RequestPool::free");
    std::uint64_t h = head_.load(std::memory_order_acquire);
    for (;;) {
      slots_[idx].next.store(index_of(h), std::memory_order_relaxed);
      const std::uint64_t nh = pack(idx, tag_of(h) + 1);
      if (head_.compare_exchange_weak(h, nh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  /// Offload-thread side: publish completion.
  void complete(std::uint32_t idx, const smpi::Status& st) {
    slots_[idx].status = st;
    slots_[idx].done.store(1, std::memory_order_release);
  }

  /// Application side: has the request completed?
  [[nodiscard]] bool done(std::uint32_t idx) const {
    return slots_[idx].done.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] const smpi::Status& status(std::uint32_t idx) const {
    return slots_[idx].status;
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Number of free slots (O(n); for tests only, quiescent state).
  [[nodiscard]] std::uint32_t free_count() const {
    std::uint32_t n = 0;
    std::uint32_t idx = index_of(head_.load(std::memory_order_acquire));
    while (idx != kNil) {
      ++n;
      idx = slots_[idx].next.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct Slot {
    std::atomic<std::uint32_t> done{0};
    smpi::Status status;
    std::atomic<std::uint32_t> next{kNil};
  };

  static std::uint64_t pack(std::uint32_t idx, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | idx;
  }
  static std::uint32_t index_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h & 0xffffffffu);
  }
  static std::uint32_t tag_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }

  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace core
