// Lock-free bounded single-producer / single-consumer submission lane.
//
// One lane per application fiber shards the offload channel's front-end:
// instead of all threads CASing on one MpscRing tail (a guaranteed cache-line
// ping-pong at high thread counts), each submitter owns a private SPSC ring
// that only it writes and only the offload engine reads. The engine drains
// lanes round-robin with a fairness bound (see OffloadChannel::engine_main).
//
// The design is the classic cached-index SPSC queue: both sides keep a
// *plain* local copy of the opposite index (`cached_head_` / `cached_tail_`)
// and only touch the shared atomic when the cached value says the lane looks
// full/empty. In the common case a push is one relaxed load, one payload
// store and one release store — no RMW at all — and the producer's and
// consumer's hot state live on separate cache lines.
//
// Batching: `try_push_n` writes a whole span of commands and publishes them
// with a single release store of the tail (one "doorbell" worth of traffic
// for N commands). FIFO order within a lane is inherent.
//
// Like MpscRing, the class is templated over an atomics policy so the
// src/check/ model checker can instantiate it with chk::ModelAtomics and
// exhaustively verify the protocol (spec: chk::specs::check_lane).
//
// Memory-order inventory (each one is load-bearing; the checker's mutation
// suite proves that weakening any of them to relaxed yields a detectable
// race or protocol violation):
//  * tail store (release), producer side: publishes the cell payload(s) to
//    the consumer.
//  * tail load (acquire), consumer side (cached-tail refresh): synchronizes
//    with the producer's release so the consumer may safely read `val`.
//  * head store (release), consumer side: returns the emptied cell(s) to the
//    producer for the next lap.
//  * head load (acquire), producer side (cached-head refresh): synchronizes
//    with the consumer's release so the producer may safely overwrite `val`.
// The producer's load of tail_ and the consumer's load of head_ are
// same-thread reads of an index only that thread writes, so they are
// relaxed; size_approx() reads both indices relaxed (values only, never
// payload visibility).
//
// memorder-audit: relaxed=5 acquire=3 release=3 acq_rel=0 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/atomics_policy.hpp"

namespace core {

template <typename T, typename Atomics = StdAtomics>
class SpscLane {
 public:
  /// `capacity` must be a power of two.
  explicit SpscLane(std::size_t capacity)
      : mask_(capacity - 1), cells_(capacity) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("SpscLane capacity must be a power of two");
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      Atomics::set_name(cells_[i].val, "lane.val", i);
    }
    Atomics::set_name(tail_, "lane.tail");
    Atomics::set_name(head_, "lane.head");
  }

  SpscLane(const SpscLane&) = delete;
  SpscLane& operator=(const SpscLane&) = delete;

  /// Single-producer push; returns false when full.
  bool try_push(T v) {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    if (pos - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (pos - cached_head_ == capacity()) return false;  // genuinely full
    }
    cells_[pos & mask_].val.ref_w() = std::move(v);
    tail_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-producer batch push: moves as many items from `vs` as fit and
  /// publishes them with ONE release store (one doorbell's worth of cache
  /// traffic for the whole prefix). Returns how many were consumed from the
  /// front of `vs`.
  std::size_t try_push_n(std::span<T> vs) {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t room = capacity() - (pos - cached_head_);
    if (room < vs.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      room = capacity() - (pos - cached_head_);
    }
    const std::size_t n = room < vs.size() ? room : vs.size();
    for (std::size_t i = 0; i < n; ++i) {
      cells_[(pos + i) & mask_].val.ref_w() = std::move(vs[i]);
    }
    if (n != 0) tail_.store(pos + n, std::memory_order_release);
    return n;
  }

  /// Single-consumer pop; returns false when empty.
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    if (pos == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (pos == cached_tail_) return false;  // genuinely empty
    }
    out = std::move(cells_[pos & mask_].val.ref_w());
    head_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when quiescent). Safe from any thread:
  /// both indices are atomics read with relaxed ordering.
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    typename Atomics::template var<T> val{};
  };
  static constexpr std::size_t kCacheLine = 64;

  std::size_t mask_;
  std::vector<Cell> cells_;
  // Producer-side hot state: the shared tail it publishes through plus its
  // private cache of the consumer's head. Padded away from the consumer side.
  alignas(kCacheLine) typename Atomics::template atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;  // producer-only
  // Consumer-side hot state.
  alignas(kCacheLine) typename Atomics::template atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;  // consumer-only
};

}  // namespace core
