#include "core/proxy_options.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/env.hpp"
#include "util/spec_parser.hpp"

namespace core {

namespace {

constexpr const char* kEnv = "MPIOFF_PROXY";

constexpr const char* kValidKeys =
    "ring, pool, lanes, lane_cap, drain, batch, watchdog, cont_run, "
    "proxies, steal";

// Both separators are accepted (proxies:4 reads naturally next to the
// MPIOFF_SAN-style specs; key=value stays valid everywhere).
util::SpecParser grammar() {
  util::SpecParser g(kEnv, "=:", kValidKeys);
  g.key("ring")
      .key("pool")
      .key("lanes")
      .key("lane_cap")
      .key("drain")
      .key("batch")
      .key("watchdog")
      .key("cont_run")
      .key("proxies")
      .key("steal");
  return g;
}

std::size_t count_of(const util::SpecItem& it) {
  return util::SpecParser::parse_count(kEnv, it.value, it.key);
}

}  // namespace

ProxyOptions ProxyOptions::defaults_for(const machine::Profile& p) {
  ProxyOptions o;
  // One lane per core that could plausibly submit (everything except the
  // offload core itself), capped: past ~16 submitters the engine's drain
  // round, not tail contention, is the limiter.
  o.lane_count = static_cast<std::size_t>(
      std::clamp(p.cores_per_rank - 1, 1, 16));
  o.watchdog_budget = p.offload_watchdog_budget;
  // One engine fiber per NUMA domain: each proxy serves its socket's
  // submitters; rank-per-socket profiles stay single-engine.
  o.proxy_count = static_cast<std::size_t>(std::clamp(p.numa_domains, 1, 8));
  return o;
}

ProxyOptions ProxyOptions::parse(const std::string& spec, ProxyOptions base) {
  ProxyOptions o = base;
  for (const util::SpecItem& it : grammar().parse(spec)) {
    if (it.key == "ring") {
      o.ring_capacity = count_of(it);
    } else if (it.key == "pool") {
      o.pool_capacity = static_cast<std::uint32_t>(count_of(it));
    } else if (it.key == "lanes") {
      o.lane_count = count_of(it);
    } else if (it.key == "lane_cap") {
      o.lane_capacity = count_of(it);
    } else if (it.key == "drain") {
      o.lane_drain_bound = count_of(it);
    } else if (it.key == "batch") {
      o.batch_flush = count_of(it);
    } else if (it.key == "watchdog") {
      o.watchdog_budget =
          util::SpecParser::parse_duration(kEnv, it.value, it.key);
    } else if (it.key == "cont_run") {
      o.cont_run_bound = count_of(it);
    } else if (it.key == "proxies") {
      o.proxy_count = count_of(it);
    } else if (it.key == "steal") {
      o.steal_bound = count_of(it);
    }
  }
  if (o.lane_drain_bound == 0 || o.batch_flush == 0 ||
      o.cont_run_bound == 0) {
    throw std::invalid_argument(
        "MPIOFF_PROXY: 'drain', 'batch' and 'cont_run' must be at least 1");
  }
  if (o.proxy_count == 0) {
    throw std::invalid_argument("MPIOFF_PROXY: 'proxies' must be at least 1");
  }
  return o;
}

ProxyOptions ProxyOptions::from_env(const machine::Profile& p) {
  ProxyOptions o = defaults_for(p);
  if (const char* spec = env_util::get("MPIOFF_PROXY"); spec != nullptr) {
    o = parse(spec, o);
  }
  return o;
}

}  // namespace core
