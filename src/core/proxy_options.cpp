#include "core/proxy_options.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "util/env.hpp"

namespace core {

namespace {

constexpr const char* kValidKeys =
    "ring, pool, lanes, lane_cap, drain, batch, watchdog, cont_run, "
    "proxies, steal";

std::size_t parse_count(const std::string& v, const std::string& key) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("MPIOFF_PROXY: bad count for '" + key +
                                "': " + v);
  }
  return static_cast<std::size_t>(n);
}

sim::Time parse_duration(const std::string& v, const std::string& key) {
  char* end = nullptr;
  const double n = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || n < 0) {
    throw std::invalid_argument("MPIOFF_PROXY: bad duration for '" + key +
                                "': " + v);
  }
  const std::string unit(end);
  if (unit.empty() || unit == "ns") return sim::Time(static_cast<std::int64_t>(n));
  if (unit == "us") return sim::Time::from_us(n);
  if (unit == "ms") return sim::Time::from_ms(n);
  if (unit == "s") return sim::Time::from_sec(n);
  throw std::invalid_argument("MPIOFF_PROXY: bad unit for '" + key + "': " + v);
}

}  // namespace

ProxyOptions ProxyOptions::defaults_for(const machine::Profile& p) {
  ProxyOptions o;
  // One lane per core that could plausibly submit (everything except the
  // offload core itself), capped: past ~16 submitters the engine's drain
  // round, not tail contention, is the limiter.
  o.lane_count = static_cast<std::size_t>(
      std::clamp(p.cores_per_rank - 1, 1, 16));
  o.watchdog_budget = p.offload_watchdog_budget;
  // One engine fiber per NUMA domain: each proxy serves its socket's
  // submitters; rank-per-socket profiles stay single-engine.
  o.proxy_count = static_cast<std::size_t>(std::clamp(p.numa_domains, 1, 8));
  return o;
}

ProxyOptions ProxyOptions::parse(const std::string& spec, ProxyOptions base) {
  ProxyOptions o = base;
  std::vector<std::string> seen_keys;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    // Both separators are accepted (proxies:4 reads naturally next to the
    // MPIOFF_SAN-style specs; key=value stays valid everywhere).
    const std::size_t eq = item.find_first_of("=:");
    if (eq == std::string::npos) {
      throw std::invalid_argument("MPIOFF_PROXY: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
        seen_keys.end()) {
      throw std::invalid_argument("MPIOFF_PROXY: duplicate key '" + key +
                                  "' (each of " + kValidKeys +
                                  " may appear once)");
    }
    seen_keys.push_back(key);
    if (key == "ring") {
      o.ring_capacity = parse_count(val, key);
    } else if (key == "pool") {
      o.pool_capacity = static_cast<std::uint32_t>(parse_count(val, key));
    } else if (key == "lanes") {
      o.lane_count = parse_count(val, key);
    } else if (key == "lane_cap") {
      o.lane_capacity = parse_count(val, key);
    } else if (key == "drain") {
      o.lane_drain_bound = parse_count(val, key);
    } else if (key == "batch") {
      o.batch_flush = parse_count(val, key);
    } else if (key == "watchdog") {
      o.watchdog_budget = parse_duration(val, key);
    } else if (key == "cont_run") {
      o.cont_run_bound = parse_count(val, key);
    } else if (key == "proxies") {
      o.proxy_count = parse_count(val, key);
    } else if (key == "steal") {
      o.steal_bound = parse_count(val, key);
    } else {
      throw std::invalid_argument("MPIOFF_PROXY: unknown key '" + key +
                                  "' (valid: " + kValidKeys + ")");
    }
  }
  if (o.lane_drain_bound == 0 || o.batch_flush == 0 ||
      o.cont_run_bound == 0) {
    throw std::invalid_argument(
        "MPIOFF_PROXY: 'drain', 'batch' and 'cont_run' must be at least 1");
  }
  if (o.proxy_count == 0) {
    throw std::invalid_argument("MPIOFF_PROXY: 'proxies' must be at least 1");
  }
  return o;
}

ProxyOptions ProxyOptions::from_env(const machine::Profile& p) {
  ProxyOptions o = defaults_for(p);
  if (const char* spec = env_util::get("MPIOFF_PROXY"); spec != nullptr) {
    o = parse(spec, o);
  }
  return o;
}

}  // namespace core
