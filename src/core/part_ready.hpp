// PartReadyWord — the per-partition ready word of a partitioned send.
//
// A partitioned send (core::Proxy::psend_init + pready) is one message whose
// payload is produced piecewise by many compute fibers. Each producer calls
// pready(p) when its slice of the buffer is final; the offload engine polls
// the word from its progress loop and ships newly-ready partitions on the
// wire while sibling lanes are still computing. The word is therefore the
// only data-carrying handoff between application fibers and the engine that
// does not ride a submission lane — it gets the same treatment as the other
// lock-free protocols in src/core/: an atomics-policy template parameter so
// the src/check/ model checker can exhaustively interleave publisher fibers
// against the engine consumer (spec: chk::specs::check_pready), and a
// mutation row per fence proving it load-bearing.
//
// Protocol:
//  * producer: write the partition's bytes into the user buffer (plain
//    stores), then mark(p) — one fetch_or with RELEASE ordering. The release
//    publishes the payload writes to whoever observes the bit.
//  * consumer (engine): load the word with ACQUIRE; for every newly-set bit
//    the acquire synchronizes with the producer's release, so the engine —
//    and the simulated NIC serializing straight from the user buffer — reads
//    the finished slice.
//  * reset() is NOT part of the concurrent protocol: it runs at re-arm time
//    (Proxy::start), when the previous generation has completed and no
//    producer or consumer touches the word — hence a relaxed store.
//
// mark() returns the word's previous value so the caller can reject a
// double pready(p) of the same generation (old bit already set) without a
// second RMW.
//
// One word covers 64 partitions; wider operations hold a vector of words
// (partition p lives in word p/64, bit p%64). The engine tracks shipped
// partitions in a plain mirror mask and only acts on `ready & ~shipped`.
//
// Memory-order inventory (mutation-tested, see check_pready):
//  * mark: fetch_or release — publishes the partition payload.
//  * load: acquire — synchronizes with mark before the payload is read.
//  * reset: relaxed store — quiescent between generations by construction.
//
// memorder-audit: relaxed=1 acquire=1 release=1 acq_rel=0 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstdint>

#include "core/atomics_policy.hpp"

namespace core {

template <typename Atomics = StdAtomics>
class PartReadyWordT {
 public:
  PartReadyWordT() { Atomics::set_name(bits_, "pready.word"); }

  PartReadyWordT(const PartReadyWordT&) = delete;
  PartReadyWordT& operator=(const PartReadyWordT&) = delete;

  /// Producer side: publish partition `bit_index` (0..63) of this word.
  /// Returns the previous word value — caller checks the bit for a
  /// double-mark misuse.
  std::uint64_t mark(unsigned bit_index) {
    return bits_.fetch_or(std::uint64_t{1} << bit_index,
                          std::memory_order_release);
  }

  /// Consumer side: current ready mask; synchronizes with every mark()
  /// whose bit is visible in the returned value.
  [[nodiscard]] std::uint64_t load() const {
    return bits_.load(std::memory_order_acquire);
  }

  /// Re-arm for the next generation. Only legal while the word is
  /// quiescent (previous generation complete, next one not yet started).
  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  typename Atomics::template atomic<std::uint64_t> bits_{0};
};

using PartReadyWord = PartReadyWordT<>;

}  // namespace core
