// Lock-free continuation slots: exactly-once completion handoff.
//
// One ContTable slot rides next to each RequestPool slot. Two racing
// parties touch it:
//
//   * the *attacher* (an application thread calling `.then(cb)`), which
//     publishes the callback record and then tries to claim the slot with
//     kArmed;
//   * the *completer* (the offload engine / progress path), which publishes
//     the payload + Status and then tries to claim the slot with kFired.
//
// Both claims are a single CAS from kIdle on the same location, so the
// location's modification order decides the race: exactly one side wins the
// claim and returns `false` ("the other side will find my claim and run the
// callback"); the losing side's CAS failure observes the winner's value and
// returns `true` ("run the callback yourself, everything you need is
// visible"). The callback therefore runs exactly once, on whichever side
// arrived second — the engine for the common attach-before-complete case,
// inline on the attaching thread when the request was already done.
//
// Memory-order inventory (the src/check/ "cont" mutation rows prove both
// sides load-bearing):
//  * arm/fire: CAS (acq_rel success / acquire failure) — the release half of
//    a successful claim publishes the claimant's record (callback for arm,
//    Status/payload for fire) to the other side; the acquire half of the
//    *failed* CAS synchronizes with that release, making the winner's record
//    safe to read before running the callback. Dropping either side lets the
//    callback observe an unpublished record or payload (a detectable race on
//    the chk::var payload in the model spec).
//  * reset: relaxed store — by reset time the slot has a single owner (the
//    side that ran the callback), so no ordering is needed; publication of
//    the recycled slot happens through RequestPool::free's release CAS.
//
// AnyClaimT below is the group-level sibling: where ContTable decides WHO
// runs one request's callback, AnyClaim decides WHICH member of a when_any
// group is the winner. Every completing member publishes its Status record
// and then CASes the single winner word from kOpen to its own index; the
// first CAS wins (its release half publishes the winner's record), every
// later member's CAS fails (the failure-acquire half makes the winner's
// record safe to read), and winner() lets any third party that observed a
// non-kOpen value (acquire) read that record too. The src/check/ "whenany"
// mutation rows prove all three orders load-bearing.
//
// memorder-audit: relaxed=3 acquire=4 release=0 acq_rel=3 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/atomics_policy.hpp"

namespace core {

template <typename Atomics = StdAtomics>
class ContTableT {
 public:
  static constexpr std::uint32_t kIdle = 0;
  static constexpr std::uint32_t kArmed = 1;
  static constexpr std::uint32_t kFired = 2;

  explicit ContTableT(std::uint32_t capacity) : slots_(capacity) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      Atomics::set_name(slots_[i].state, "cont.state", i);
    }
  }

  ContTableT(const ContTableT&) = delete;
  ContTableT& operator=(const ContTableT&) = delete;

  /// Attacher side: publish the callback record *before* calling arm().
  /// Returns false when the claim won (the completer will run the callback)
  /// and true when the completion already fired (the caller must run the
  /// callback itself — the Status/payload writes are visible).
  bool arm(std::uint32_t idx) {
    std::uint32_t expected = kIdle;
    return !slots_[idx].state.compare_exchange_strong(
        expected, kArmed, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Completer side: publish the Status/payload *before* calling fire().
  /// Returns false when the claim won (no continuation was attached yet; a
  /// later arm() will run it inline) and true when a continuation is armed
  /// (the caller must run it — the callback record is visible).
  bool fire(std::uint32_t idx) {
    std::uint32_t expected = kIdle;
    return !slots_[idx].state.compare_exchange_strong(
        expected, kFired, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Recycle the slot after the callback ran (or alongside a plain free for
  /// requests that never had a continuation). Single-owner at this point.
  void reset(std::uint32_t idx) {
    slots_[idx].state.store(kIdle, std::memory_order_relaxed);
  }

  /// Quiescent-state inspection (tests only).
  [[nodiscard]] std::uint32_t state_of(std::uint32_t idx) const {
    return slots_[idx].state.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

 private:
  struct Slot {
    typename Atomics::template atomic<std::uint32_t> state{kIdle};
  };
  std::vector<Slot> slots_;
};

/// Production continuation table: std::atomic, zero instrumentation.
using ContTable = ContTableT<>;

/// First-wins claim word for when_any groups (header doc above). Members are
/// indexed 0..n-1; kOpen means no member has completed yet.
template <typename Atomics = StdAtomics>
class AnyClaimT {
 public:
  static constexpr std::uint32_t kOpen = 0xffffffffu;

  AnyClaimT() { Atomics::set_name(winner_, "any.winner"); }
  AnyClaimT(const AnyClaimT&) = delete;
  AnyClaimT& operator=(const AnyClaimT&) = delete;

  /// Completer side: publish member `idx`'s Status record *before* calling
  /// claim(). Returns true when this member is the winner (run the win
  /// callback); false when another member already won — `observed` then
  /// holds the winner's index, and the winner's record is safe to read
  /// through the failed CAS's acquire (no extra winner() load needed).
  bool claim(std::uint32_t idx, std::uint32_t& observed) {
    observed = kOpen;
    const bool won = winner_.compare_exchange_strong(
        observed, idx, std::memory_order_acq_rel, std::memory_order_acquire);
    if (won) observed = idx;
    return won;
  }

  /// Claim without caring who beat you (the common hedging path: losers
  /// just decline to run the win callback).
  bool claim(std::uint32_t idx) {
    std::uint32_t observed;
    return claim(idx, observed);
  }

  /// Which member won, or kOpen if the race is still undecided. A non-kOpen
  /// result (acquire) makes the winner's published record safe to read.
  [[nodiscard]] std::uint32_t winner() const {
    return winner_.load(std::memory_order_acquire);
  }

  /// Recycle for the next group. Single-owner at this point (all members
  /// settled), so no ordering is needed.
  void reset() { winner_.store(kOpen, std::memory_order_relaxed); }

 private:
  typename Atomics::template atomic<std::uint32_t> winner_{kOpen};
};

/// Production when_any claim word: std::atomic, zero instrumentation.
using AnyClaim = AnyClaimT<>;

}  // namespace core
