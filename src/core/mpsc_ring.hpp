// Lock-free bounded multi-producer / single-consumer command ring.
//
// This is the paper's "lightweight lock-free command queue" (Section 3.1):
// application threads enqueue serialized MPI calls concurrently; the single
// offload thread dequeues. The implementation is Dmitry Vyukov's bounded
// MPMC queue specialized to one consumer (the head index needs no CAS
// beyond the per-cell sequence protocol, but it is still an atomic with
// relaxed ordering: producers read it cross-thread through size_approx()).
//
// The same class is used in three ways:
//  * inside the simulator (single host thread, virtual-time costs charged
//    around push/pop),
//  * under real std::thread stress tests and google-benchmark microbenches,
//  * instantiated with chk::ModelAtomics under the src/check/ model checker,
//    which exhaustively explores bounded interleavings of this exact code
//    and verifies the seq acquire/release protocol protects `Cell::val`.
//
// Memory-order inventory (each one is load-bearing; the checker's mutation
// suite proves that weakening any of them to relaxed yields a detectable
// race or protocol violation):
//  * seq load (acquire), producer side: synchronizes with the consumer's
//    seq release store so the producer may safely overwrite `val`.
//  * seq store (release), producer side: publishes `val` to the consumer.
//  * seq load (acquire), consumer side: synchronizes with the producer's
//    release so the consumer may safely read `val`.
//  * seq store (release), consumer side: publishes the moved-from cell back
//    to the producers (next lap).
// tail_ and head_ themselves only carry values, never payload visibility,
// so all their accesses are relaxed.
//
// memorder-audit: relaxed=9 acquire=2 release=2 acq_rel=0 seq_cst=0
// (tools/check_memorder.py fails CI when this line disagrees with the
// std::memory_order_* tokens actually used below — update both together.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/atomics_policy.hpp"

namespace core {

template <typename T, typename Atomics = StdAtomics>
class MpscRing {
 public:
  /// `capacity` must be a power of two.
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(capacity) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("MpscRing capacity must be a power of two");
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      Atomics::set_name(cells_[i].seq, "ring.seq", i);
      Atomics::set_name(cells_[i].val, "ring.val", i);
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    Atomics::set_name(tail_, "ring.tail");
    Atomics::set_name(head_, "ring.head");
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer push; returns false when full.
  bool try_push(T v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          c.val.ref_w() = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop; returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    Cell& c = cells_[head & mask_];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(head + 1) < 0) {
      return false;  // empty
    }
    out = std::move(c.val.ref_w());
    c.seq.store(head + mask_ + 1, std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate occupancy (exact when quiescent). Safe to call from any
  /// thread: both indices are atomics read with relaxed ordering.
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    typename Atomics::template atomic<std::size_t> seq{0};
    typename Atomics::template var<T> val{};
  };
  static constexpr std::size_t kCacheLine = 64;

  std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLine) typename Atomics::template atomic<std::size_t> tail_{0};  // producers
  alignas(kCacheLine) typename Atomics::template atomic<std::size_t> head_{0};  // the one consumer
};

}  // namespace core
