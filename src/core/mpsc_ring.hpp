// Lock-free bounded multi-producer / single-consumer command ring.
//
// This is the paper's "lightweight lock-free command queue" (Section 3.1):
// application threads enqueue serialized MPI calls concurrently; the single
// offload thread dequeues. The implementation is Dmitry Vyukov's bounded
// MPMC queue specialized to one consumer (the head index needs no atomicity
// beyond the per-cell sequence protocol).
//
// The same class is used in two ways:
//  * inside the simulator (single host thread, virtual-time costs charged
//    around push/pop), and
//  * under real std::thread stress tests and google-benchmark microbenches,
//    which validate the lock-free protocol itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace core {

template <typename T>
class MpscRing {
 public:
  /// `capacity` must be a power of two.
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(capacity) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("MpscRing capacity must be a power of two");
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer push; returns false when full.
  bool try_push(T v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          c.val = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop; returns false when empty.
  bool try_pop(T& out) {
    Cell& c = cells_[head_ & mask_];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(head_ + 1) < 0) {
      return false;  // empty
    }
    out = std::move(c.val);
    c.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  /// Approximate occupancy (exact when quiescent).
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_relaxed) - head_;
  }
  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T val;
  };
  static constexpr std::size_t kCacheLine = 64;

  std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producers
  alignas(kCacheLine) std::size_t head_{0};               // the one consumer
};

}  // namespace core
