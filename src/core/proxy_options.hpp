// ProxyOptions: one place for every capacity/tuning knob of the offload
// proxy, replacing the positional (ring_capacity, pool_capacity) constructor
// arguments and the magic 1024/4096 literals that used to be scattered
// across benches and tests.
//
// Defaults come from the machine profile (defaults_for), and a run can be
// retuned without recompiling through the MPIOFF_PROXY environment spec
// (from_env), mirroring MPIOFF_FAULTS:
//
//   MPIOFF_PROXY="lanes=8,lane_cap=128,batch=16,watchdog=200ms" ./bench_...
//
// Keys (all optional, comma-separated key=value or key:value):
//   ring     shared MPSC command-ring capacity (power of two), per engine
//   pool     request-pool capacity (done-flag slots)
//   lanes    per-thread SPSC submission lane count; 0 = single shared ring
//   lane_cap capacity of each lane (power of two)
//   drain    engine fairness bound: max commands popped per lane per pass
//   batch    flush threshold: max commands per one lane publish + doorbell
//   watchdog in-flight age budget (duration: ns/us/ms/s suffix), 0 disables
//   cont_run max continuation callbacks run per engine pass (>= 1)
//   proxies  offload engine fibers per rank (>= 1); traffic is partitioned
//            by peer/communicator hash so per-peer matching order holds
//   steal    work-steal budget: max commands one engine drains from a
//            sibling's queues per pass; 0 disables stealing
//
// Repeating a key is rejected: a retuning wrapper script that appends to an
// inherited spec should fail loudly, not silently last-write-win.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "machine/profile.hpp"
#include "sim/time.hpp"

namespace core {

struct ProxyOptions {
  std::size_t ring_capacity = 1024;   ///< shared MPSC ring (fallback/overflow)
  std::uint32_t pool_capacity = 4096; ///< request-pool done-flag slots
  std::size_t lane_count = 8;         ///< SPSC lanes; 0 = shared ring only
  std::size_t lane_capacity = 64;     ///< per-lane ring capacity
  std::size_t lane_drain_bound = 16;  ///< engine pops per lane per pass
  std::size_t batch_flush = 8;        ///< max commands per batched publish
  sim::Time watchdog_budget{500'000'000};  ///< 0 disables the watchdog
  /// Max continuation callbacks the engine runs per pass before returning to
  /// the drain/testany loop; leftovers count into cont_deferred.
  std::size_t cont_run_bound = 16;
  /// Offload engine fibers per rank. The struct default stays 1 (explicit
  /// aggregate options get the classic single-engine channel); defaults_for
  /// derives it from the profile's NUMA-domain count.
  std::size_t proxy_count = 1;
  /// Max commands an idle engine drains from one sibling's queues per steal
  /// pass (0 disables work stealing between engine fibers).
  std::size_t steal_bound = 8;

  /// Profile-derived defaults: one lane per usable submitter core (capped),
  /// one engine fiber per NUMA domain, watchdog budget from the profile.
  static ProxyOptions defaults_for(const machine::Profile& p);

  /// Parse a "key=value,key=value" spec on top of `base`. Throws
  /// std::invalid_argument naming the bad key/value and the valid keys.
  static ProxyOptions parse(const std::string& spec, ProxyOptions base);
  static ProxyOptions parse(const std::string& spec) {
    return parse(spec, ProxyOptions{});
  }

  /// defaults_for(p), then apply the MPIOFF_PROXY env spec if set.
  static ProxyOptions from_env(const machine::Profile& p);
};

}  // namespace core
