// The MPI offload engine (paper Section 3).
//
// One dedicated fiber per rank — "the offload thread" — is the only execution
// context that ever enters the MPI library. Application threads interact with
// it exclusively through:
//   * the lock-free command ring (call submission),
//   * the lock-free request pool (completion flags).
//
// Engine loop:
//   1. drain the command ring, issuing each command as a *nonblocking* MPI
//      call (blocking application calls were converted by the channel);
//   2. when the ring is empty, drive progress on all in-flight operations
//      with MPI_Testany, publishing done flags as they complete;
//   3. when nothing is in flight and no commands are pending, sleep on the
//      rank's doorbell (a real offload thread spins; the simulator models the
//      spin-detection latency on wake instead of burning events).
#pragma once

#include <cstdint>
#include <vector>

#include "core/command.hpp"
#include "core/mpsc_ring.hpp"
#include "core/request_pool.hpp"
#include "mpi/rank_ctx.hpp"
#include "sim/sync.hpp"
#include "trace/counters.hpp"

namespace core {

struct OffloadStats {
  std::uint64_t commands = 0;
  std::uint64_t testany_calls = 0;
  std::uint64_t completions = 0;
  std::uint64_t max_inflight = 0;
  std::uint64_t ring_full_stalls = 0;  ///< submit spun on a full command ring
  std::uint64_t pool_full_stalls = 0;  ///< submit waited on an exhausted pool
  /// In-flight requests seen exceeding Profile::offload_watchdog_budget
  /// (counted once per request; diagnostic only, never alters timing).
  std::uint64_t watchdog_flags = 0;
};

/// Shared state between application threads and the offload engine of one
/// rank. Application-facing calls live in OffloadProxy (core/proxy.hpp);
/// this class is the engine side plus the submission primitives.
class OffloadChannel {
 public:
  OffloadChannel(smpi::RankCtx& rc, std::size_t ring_capacity = 1024,
                 std::uint32_t pool_capacity = 4096);

  smpi::RankCtx& rank_ctx() { return rc_; }
  RequestPool& pool() { return pool_; }
  [[nodiscard]] const OffloadStats& stats() const { return stats_; }

  // ---------------- application side ----------------

  /// Serialize + enqueue; returns the proxy request slot. Charges the
  /// enqueue cost; spins (virtually) if the ring is momentarily full.
  std::uint32_t submit(Command cmd);

  /// Spin on the done flag of `proxy` (the paper's optimized MPI_Wait: no
  /// MPI call, just a flag check). Frees the slot.
  void wait_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Nonblocking flag check; frees the slot when done.
  bool test_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Enqueue the shutdown command (engine exits after draining in-flight).
  void shutdown();

  // ---------------- engine side ----------------

  /// Body of the offload fiber.
  void engine_main();

 private:
  void issue(const Command& cmd);
  void track_inflight(smpi::Request real, std::uint32_t proxy);
  void drive_progress();
  void compact_inflight();
  void watchdog_scan();

  smpi::RankCtx& rc_;
  MpscRing<Command> ring_;
  RequestPool pool_;
  /// Signalled by the engine whenever it publishes a done flag; application
  /// waiters use it to model their done-flag spin loop without event spam.
  sim::Notifier completions_;
  bool shutdown_requested_ = false;

  struct Inflight {
    smpi::Request real;
    std::uint32_t proxy;
    sim::Time issued_at;   ///< for the stuck-request watchdog
    bool flagged = false;  ///< already reported by the watchdog
  };
  /// In-flight tracking, kept incrementally: inflight_ and scratch_reqs_ are
  /// parallel arrays appended by issue(). A completion nulls its
  /// scratch_reqs_ entry in place (testany does this as a side effect), so
  /// the Testany span never has to be rebuilt and FIFO scan order — hence
  /// completion fairness — is preserved. Dead slots are reclaimed lazily by
  /// compact_inflight() once they outnumber live ones.
  std::vector<Inflight> inflight_;
  std::vector<smpi::Request> scratch_reqs_;
  std::size_t live_inflight_ = 0;
  sim::Time next_watchdog_scan_{0};
  OffloadStats stats_;
  trace::Gauge g_ring_;
  trace::Gauge g_inflight_;
};

}  // namespace core
