// The MPI offload engine (paper Section 3).
//
// One dedicated fiber per rank — "the offload thread" — is the only execution
// context that ever enters the MPI library. Application threads interact with
// it exclusively through:
//   * sharded per-thread SPSC submission lanes (the fast path: each
//     submitting fiber is bound to its own lane, so concurrent submitters
//     never touch each other's cache lines),
//   * the shared lock-free MPSC command ring (fallback when lanes are
//     disabled or more fibers submit than lanes exist; producers contend on
//     its tail cache line, modeled by a mutex charging
//     Profile::mpsc_line_transfer per acquisition),
//   * the lock-free request pool (completion flags).
//
// Engine loop:
//   1. drain the submission lanes round-robin, at most
//      ProxyOptions::lane_drain_bound commands per lane per pass (the
//      fairness bound: a saturating lane cannot starve its neighbours or
//      postpone the progress pass), then drain the shared ring;
//   2. drive progress on all in-flight operations with MPI_Testany,
//      publishing done flags as they complete and queueing any armed
//      continuations (cont_table.hpp), then run up to
//      ProxyOptions::cont_run_bound of those callbacks — callbacks may post
//      follow-ups, which issue directly instead of re-entering the ring;
//   3. when nothing is pending, wait adaptively: spin-poll a few times
//      (cheapest wake), then yield the core a few times, then block on the
//      rank's doorbell (a real offload thread spins; the simulator models the
//      detection latency on wake instead of burning events).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/command.hpp"
#include "core/cont_table.hpp"
#include "core/mpsc_ring.hpp"
#include "core/proxy_options.hpp"
#include "core/request_pool.hpp"
#include "core/spsc_lane.hpp"
#include "mpi/rank_ctx.hpp"
#include "sim/sync.hpp"
#include "trace/counters.hpp"

namespace core {

/// A completion continuation. Runs exactly once with the request's Status;
/// may post follow-up nonblocking operations and attach further
/// continuations, but must never block (the offload engine enforces this:
/// a blocking wait from engine context throws).
using ContFn = std::function<void(const smpi::Status&)>;

struct OffloadStats {
  std::uint64_t commands = 0;
  std::uint64_t testany_calls = 0;
  std::uint64_t completions = 0;
  std::uint64_t max_inflight = 0;
  std::uint64_t ring_full_stalls = 0;  ///< submit spun on the full shared ring
  std::uint64_t pool_full_stalls = 0;  ///< submit waited on an exhausted pool
  /// In-flight requests seen exceeding ProxyOptions::watchdog_budget
  /// (counted once per request; diagnostic only, never alters timing).
  std::uint64_t watchdog_flags = 0;
  // ---- submission front-end ----
  std::uint64_t lane_submits = 0;    ///< commands entering via a SPSC lane
  std::uint64_t shared_submits = 0;  ///< commands entering via the shared ring
  std::uint64_t batches = 0;         ///< submit_batch publishes
  std::uint64_t batched_commands = 0;  ///< commands carried by those batches
  std::uint64_t lane_full_stalls = 0;  ///< producer spun on its full lane
  // ---- adaptive engine wait policy ----
  std::uint64_t engine_spins = 0;   ///< idle spin polls
  std::uint64_t engine_yields = 0;  ///< idle yield polls
  std::uint64_t engine_sleeps = 0;  ///< doorbell blocks
  // ---- continuation subsystem ----
  std::uint64_t cont_armed = 0;     ///< continuations attached before completion
  std::uint64_t cont_inline = 0;    ///< attach found the request already done
  std::uint64_t cont_executed = 0;  ///< callbacks run by the engine
  std::uint64_t cont_deferred = 0;  ///< ready callbacks pushed past a pass
                                    ///  by the cont_run bound (cumulative)
  std::uint64_t cont_posts = 0;     ///< commands posted from engine context
};

/// Per-lane occupancy/batching counters (see OffloadChannel::lane_stats).
struct LaneStats {
  std::uint64_t submits = 0;          ///< commands pushed (incl. batched)
  std::uint64_t batches = 0;          ///< batched publishes into this lane
  std::uint64_t batched_commands = 0; ///< commands carried by those batches
  std::uint64_t full_stalls = 0;      ///< producer spun on the full lane
  std::uint64_t max_occupancy = 0;    ///< high-water mark of queued commands
  std::uint64_t drained = 0;          ///< commands popped by the engine
};

/// Shared state between application threads and the offload engine of one
/// rank. Application-facing calls live in OffloadProxy (core/proxy.hpp);
/// this class is the engine side plus the submission primitives.
class OffloadChannel {
 public:
  explicit OffloadChannel(smpi::RankCtx& rc, const ProxyOptions& opts = {});

  smpi::RankCtx& rank_ctx() { return rc_; }
  RequestPool& pool() { return pool_; }
  [[nodiscard]] const RequestPool& pool() const { return pool_; }
  [[nodiscard]] const OffloadStats& stats() const { return stats_; }
  [[nodiscard]] const ProxyOptions& options() const { return opts_; }
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] const LaneStats& lane_stats(std::size_t i) const {
    return lanes_[i]->stats;
  }
  /// Signalled whenever the engine publishes a done flag (or a waiter frees
  /// a slot); exposed so the proxy's waitany/testall can sleep on it.
  sim::Notifier& completions() { return completions_; }

  // ---------------- application side ----------------

  /// Serialize + enqueue; returns the proxy request slot. Charges the
  /// enqueue cost; spins (virtually) if the lane/ring is momentarily full.
  std::uint32_t submit(Command cmd);

  /// Enqueue a whole batch through the caller's lane with ONE publish and
  /// ONE doorbell, writing each command's allocated proxy slot back into
  /// `cmds[i].proxy`. The first command pays the full cmd_enqueue cost,
  /// subsequent ones only Profile::cmd_enqueue_batch. FIFO order within the
  /// batch is preserved. Falls back to the shared ring (still one doorbell,
  /// one tail-line transfer) when the caller has no lane.
  void submit_batch(std::span<Command> cmds);

  /// Spin on the done flag of `proxy` (the paper's optimized MPI_Wait: no
  /// MPI call, just a flag check). Frees the slot.
  void wait_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Nonblocking flag check; frees the slot when done.
  bool test_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Bind `fn` to run exactly once when `proxy` completes. Consumes the
  /// slot: the side that runs the callback frees it, so the caller must not
  /// wait on or test the slot afterwards. When the request already
  /// completed, the callback runs inline on the calling thread (returns
  /// true); otherwise the engine runs it from its completion pass (returns
  /// false). Continuations may submit follow-up work — from engine context
  /// such posts bypass the lanes/ring and issue directly, so a full ring
  /// can never deadlock a posting callback.
  bool attach_continuation(std::uint32_t proxy, ContFn fn);

  /// True when the calling fiber IS the offload engine (continuation
  /// callbacks run there). Blocking completion calls are illegal in that
  /// context and throw. Identity is per-fiber, not a global "engine is
  /// running" bit: application fibers interleaving with a blocked engine
  /// must keep taking the lane/ring path.
  [[nodiscard]] bool in_engine() const {
    sim::Engine* e = sim::Engine::current();
    return engine_fiber_ != nullptr && e != nullptr &&
           e->current_fiber() == engine_fiber_;
  }

  /// Continuations queued but not yet run by the engine.
  [[nodiscard]] std::size_t cont_pending() const { return cont_ready_.size(); }

  /// Enqueue the shutdown command (engine exits after draining every lane,
  /// the shared ring, all in-flight requests, and the continuation queue).
  void shutdown();

  // ---------------- engine side ----------------

  /// Body of the offload fiber.
  void engine_main();

 private:
  struct Lane {
    Lane(std::size_t capacity, int rank, std::size_t index)
        : ring(capacity),
          gauge_name("lane" + std::to_string(index) + "_occupancy"),
          gauge(rank, gauge_name.c_str()) {}
    SpscLane<Command> ring;
    LaneStats stats;
    int owner_slot = -1;     ///< thread-registry slot bound to this lane
    std::string gauge_name;  ///< stable storage for the gauge's name
    trace::Gauge gauge;
  };

  /// The caller's lane, binding one on first use (nullptr = shared ring:
  /// lanes disabled, or more submitting fibers than lanes).
  Lane* lane_for_caller();
  std::uint32_t alloc_slot();
  /// Engine-context slot allocation: on exhaustion, drives progress (the
  /// engine can never block on its own completions notifier).
  std::uint32_t alloc_slot_engine();
  /// Engine-context submit: no lane/ring, no doorbell — the command issues
  /// directly. Used by continuations posting follow-ups.
  std::uint32_t submit_from_engine(Command cmd);
  void push_lane(Lane& lane, const Command& cmd);
  void push_shared_locked(const Command& cmd);

  void issue(const Command& cmd);
  void track_inflight(smpi::Request real, std::uint32_t proxy);
  /// Publish a completion: done flag, stats, doorbell — and hand the slot to
  /// the continuation queue when one is armed.
  void complete_slot(std::uint32_t proxy, const smpi::Status& st);
  bool drain_lanes_round();
  bool drain_shared();
  void process_command(const Command& cmd);
  [[nodiscard]] bool lanes_empty() const;
  [[nodiscard]] bool submissions_pending() const;
  void drive_progress();
  /// Run up to ProxyOptions::cont_run_bound queued continuations; returns
  /// true when any ran (the engine re-drains before sleeping: callbacks
  /// post). Leftovers count into cont_deferred and run next pass.
  bool run_continuations();
  void compact_inflight();
  void watchdog_scan();

  smpi::RankCtx& rc_;
  ProxyOptions opts_;
  MpscRing<Command> ring_;
  RequestPool pool_;
  /// Sharded per-thread submission lanes (unique_ptr: Lane owns the stable
  /// string its trace gauge points into, so Lane must not relocate).
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::uint32_t> lane_of_slot_;  ///< thread slot -> lane index
  std::size_t next_lane_ = 0;                ///< next unbound lane
  std::size_t drain_cursor_ = 0;             ///< round-robin fairness cursor
  /// Models the shared ring's tail cache line: producers pushing to the
  /// shared ring serialize here, each paying Profile::mpsc_line_transfer.
  /// Lane submitters never touch it — that is the point of the lanes.
  sim::Mutex shared_tail_line_;
  /// Signalled by the engine whenever it publishes a done flag; application
  /// waiters use it to model their done-flag spin loop without event spam.
  sim::Notifier completions_;
  bool shutdown_requested_ = false;

  // ---- continuation subsystem ----
  /// Exactly-once arm/fire handoff, one slot per pool slot.
  ContTable cont_;
  /// Callback records, indexed by pool slot. Published to the engine by the
  /// arm() claim's release; read under the fire()-failure acquire.
  std::vector<ContFn> cont_fns_;
  /// Fired slots whose callbacks the engine still owes. Bounded per pass by
  /// ProxyOptions::cont_run_bound so a burst of completions cannot starve
  /// the drain/testany loop.
  std::deque<std::uint32_t> cont_ready_;
  /// The engine fiber, set for the whole lifetime of engine_main: submits
  /// from that fiber (continuation callbacks) take the direct-issue path and
  /// blocking waits from it are errors. Compared against the CURRENT fiber —
  /// other fibers interleave whenever the engine blocks in a sim wait.
  sim::Fiber* engine_fiber_ = nullptr;

  struct Inflight {
    smpi::Request real;
    std::uint32_t proxy;
    sim::Time issued_at;   ///< for the stuck-request watchdog
    bool flagged = false;  ///< already reported by the watchdog
  };
  /// In-flight tracking, kept incrementally: inflight_ and scratch_reqs_ are
  /// parallel arrays appended by issue(). A completion nulls its
  /// scratch_reqs_ entry in place (testany does this as a side effect), so
  /// the Testany span never has to be rebuilt and FIFO scan order — hence
  /// completion fairness — is preserved. Dead slots are reclaimed lazily by
  /// compact_inflight() once they outnumber live ones.
  std::vector<Inflight> inflight_;
  std::vector<smpi::Request> scratch_reqs_;
  std::size_t live_inflight_ = 0;
  sim::Time next_watchdog_scan_{0};
  OffloadStats stats_;
  trace::Gauge g_ring_;
  trace::Gauge g_inflight_;
};

}  // namespace core
