// The MPI offload engine (paper Section 3).
//
// One or more dedicated fibers per rank — "the offload proxies" — are the
// only execution contexts that ever enter the MPI library. Application
// threads interact with them exclusively through:
//   * sharded per-(thread, engine) SPSC submission lanes (the fast path:
//     each submitting fiber owns a private lane per engine, so concurrent
//     submitters never touch each other's cache lines),
//   * per-engine lock-free MPSC command rings (fallback when lanes are
//     disabled or more fibers submit than lanes exist; producers contend on
//     a ring's tail cache line, modeled by a mutex charging
//     Profile::mpsc_line_transfer per acquisition),
//   * the shared lock-free request pool (completion flags).
//
// Multi-proxy sharding (ProxyOptions::proxy_count, default one per NUMA
// domain): commands are partitioned across engines by a peer/communicator
// hash (engine_of) so everything whose relative order MPI matching can
// observe — sends to one peer on one communicator, receives for one
// envelope, collectives on one communicator — lands in ONE engine's queues
// and is issued in submission order. Each engine owns a DrainClaim covering
// its lane column + ring; an idle engine may steal up to
// ProxyOptions::steal_bound commands from a sibling per pass by taking that
// sibling's claim, which both serializes the single-consumer pop protocols
// and carries the happens-before edge for the lanes' consumer-side state
// (see core/drain_claim.hpp). The claim is held across the whole pop+issue
// sequence: issuing yields, and releasing in between would let two engines
// interleave same-envelope traffic out of posted order.
//
// Engine loop (each engine fiber):
//   1. claim own queues; drain own lane column round-robin, at most
//      ProxyOptions::lane_drain_bound commands per lane per pass (the
//      fairness bound: a saturating lane cannot starve its neighbours or
//      postpone the progress pass), then drain own ring; release;
//   2. drive progress on own in-flight operations with MPI_Testany,
//      publishing done flags as they complete and queueing any armed
//      continuations (cont_table.hpp), then run up to
//      ProxyOptions::cont_run_bound of those callbacks — callbacks may post
//      follow-ups, which issue directly instead of re-entering the ring;
//   3. if that found nothing, try one bounded steal pass from a busy
//      sibling;
//   4. when nothing is pending, wait adaptively: spin-poll a few times
//      (cheapest wake), then yield the core a few times, then block on the
//      rank's doorbell — after snapshotting the doorbell and re-checking
//      every queue, so a command published between the last empty poll and
//      the sleep transition can never be stranded.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/command.hpp"
#include "core/cont_table.hpp"
#include "core/drain_claim.hpp"
#include "core/mpsc_ring.hpp"
#include "core/part_ready.hpp"
#include "core/proxy_options.hpp"
#include "core/request_pool.hpp"
#include "core/spsc_lane.hpp"
#include "mpi/rank_ctx.hpp"
#include "sim/sync.hpp"
#include "trace/counters.hpp"

namespace core {

/// A completion continuation. Runs exactly once with the request's Status;
/// may post follow-up nonblocking operations and attach further
/// continuations, but must never block (the offload engine enforces this:
/// a blocking wait from engine context throws).
using ContFn = std::function<void(const smpi::Status&)>;

/// Lifecycle of a persistent (init-once/start-many) request, shared by the
/// proxy API and the offload channel. kInactive -> kStarted at Start;
/// kStarted -> kInactive when the completion is consumed (wait/test or a
/// fired continuation); kFreed is terminal.
enum class PState : std::uint8_t { kInactive, kStarted, kFreed };

struct OffloadStats {
  std::uint64_t commands = 0;
  std::uint64_t testany_calls = 0;
  std::uint64_t completions = 0;
  std::uint64_t max_inflight = 0;
  std::uint64_t ring_full_stalls = 0;  ///< submit spun on a full shared ring
  std::uint64_t pool_full_stalls = 0;  ///< submit waited on an exhausted pool
  /// In-flight requests seen exceeding ProxyOptions::watchdog_budget
  /// (counted once per request; diagnostic only, never alters timing).
  std::uint64_t watchdog_flags = 0;
  // ---- submission front-end ----
  std::uint64_t lane_submits = 0;    ///< commands entering via a SPSC lane
  std::uint64_t shared_submits = 0;  ///< commands entering via a shared ring
                                     ///  because lanes are disabled
  /// Commands from fibers that could not bind a lane (more submitters than
  /// lanes) and fell back to a shared ring. Kept out of shared_submits so
  /// the lane trailer's per-lane throughput is not inflated by overflow
  /// traffic that never touched a lane.
  std::uint64_t overflow_submits = 0;
  std::uint64_t batches = 0;         ///< submit_batch publishes
  std::uint64_t batched_commands = 0;  ///< commands carried by those batches
  std::uint64_t lane_full_stalls = 0;  ///< producer spun on its full lane
  // ---- multi-proxy work stealing ----
  std::uint64_t steal_rounds = 0;    ///< passes that stole from some sibling
  std::uint64_t steal_commands = 0;  ///< commands drained from a sibling
  // ---- adaptive engine wait policy ----
  std::uint64_t engine_spins = 0;   ///< idle spin polls
  std::uint64_t engine_yields = 0;  ///< idle yield polls
  std::uint64_t engine_sleeps = 0;  ///< doorbell blocks
  // ---- continuation subsystem ----
  std::uint64_t cont_armed = 0;     ///< continuations attached before completion
  std::uint64_t cont_inline = 0;    ///< attach found the request already done
  std::uint64_t cont_executed = 0;  ///< callbacks run by the engine
  std::uint64_t cont_deferred = 0;  ///< ready callbacks pushed past a pass
                                    ///  by the cont_run bound (cumulative)
  std::uint64_t cont_posts = 0;     ///< commands posted from engine context
};

/// Per-lane occupancy/batching counters (see OffloadChannel::lane_stats).
struct LaneStats {
  std::uint64_t submits = 0;          ///< commands pushed (incl. batched)
  std::uint64_t batches = 0;          ///< batched publishes into this lane
  std::uint64_t batched_commands = 0; ///< commands carried by those batches
  std::uint64_t full_stalls = 0;      ///< producer spun on the full lane
  std::uint64_t max_occupancy = 0;    ///< high-water mark of queued commands
  std::uint64_t drained = 0;          ///< commands popped by an engine
};

/// Shared state between application threads and the offload engines of one
/// rank. Application-facing calls live in OffloadProxy (core/proxy.hpp);
/// this class is the engine side plus the submission primitives.
class OffloadChannel {
 public:
  explicit OffloadChannel(smpi::RankCtx& rc, const ProxyOptions& opts = {});

  smpi::RankCtx& rank_ctx() { return rc_; }
  RequestPool& pool() { return pool_; }
  [[nodiscard]] const RequestPool& pool() const { return pool_; }
  [[nodiscard]] const OffloadStats& stats() const { return stats_; }
  [[nodiscard]] const ProxyOptions& options() const { return opts_; }
  /// Offload engine fibers serving this channel.
  [[nodiscard]] std::size_t engine_count() const { return engines_.size(); }
  /// Total lanes in the grid (lane rows x engines; one row per submitter).
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] const LaneStats& lane_stats(std::size_t i) const {
    return lanes_[i]->stats;
  }
  /// Signalled whenever an engine publishes a done flag (or a waiter frees
  /// a slot); exposed so the proxy's waitany/testall can sleep on it.
  sim::Notifier& completions() { return completions_; }

  // ---------------- application side ----------------

  /// Serialize + enqueue; returns the proxy request slot. Charges the
  /// enqueue cost; spins (virtually) if the lane/ring is momentarily full.
  std::uint32_t submit(Command cmd);

  /// Enqueue a whole batch through the caller's lanes with one publish and
  /// ONE doorbell per engine touched, writing each command's allocated
  /// proxy slot back into `cmds[i].proxy`. The first command pays the full
  /// cmd_enqueue cost, subsequent ones only Profile::cmd_enqueue_batch.
  /// FIFO order within the batch is preserved per engine (and engine_of
  /// keeps everything order-sensitive on one engine). Falls back to the
  /// shared rings (still one tail-line transfer per engine run) when the
  /// caller has no lane.
  void submit_batch(std::span<Command> cmds);

  /// Spin on the done flag of `proxy` (the paper's optimized MPI_Wait: no
  /// MPI call, just a flag check). Frees the slot.
  void wait_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Nonblocking flag check; frees the slot when done.
  bool test_done(std::uint32_t proxy, smpi::Status* st = nullptr);

  /// Bind `fn` to run exactly once when `proxy` completes. Consumes the
  /// slot: the side that runs the callback frees it, so the caller must not
  /// wait on or test the slot afterwards. When the request already
  /// completed, the callback runs inline on the calling thread (returns
  /// true); otherwise the discovering engine runs it from its completion
  /// pass (returns false). Continuations may submit follow-up work — from
  /// engine context such posts bypass the lanes/rings and issue directly,
  /// so a full ring can never deadlock a posting callback.
  bool attach_continuation(std::uint32_t proxy, ContFn fn);

  /// True when the calling fiber is ONE OF the offload engines
  /// (continuation callbacks run there). Blocking completion calls are
  /// illegal in that context and throw. Identity is per-fiber, not a global
  /// "engine is running" bit: application fibers interleaving with a
  /// blocked engine must keep taking the lane/ring path.
  [[nodiscard]] bool in_engine() const {
    sim::Engine* eng = sim::Engine::current();
    if (eng == nullptr) return false;
    const sim::Fiber* f = eng->current_fiber();
    if (f == nullptr) return false;
    for (const auto& e : engines_) {
      if (e->fiber == f) return true;
    }
    return false;
  }

  /// Continuations queued but not yet run by their engine.
  [[nodiscard]] std::size_t cont_pending() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->cont_ready.size();
    return n;
  }

  // ---------------- persistent / partitioned requests ----------------
  // A persistent offload request pins one RequestPool slot for its whole
  // lifetime and keeps its envelope in an engine-side PersistSlot; every
  // re-arm publishes only the slot index (CmdOp::kStartPersistent, charged
  // at Profile::cmd_enqueue_persist instead of a full enqueue). Partitioned
  // sends additionally carry a per-partition ready word the engines poll:
  // pready(p) from any compute fiber publishes one bit, and the engine that
  // owns partition p (partition-hash sharding) ships it while sibling
  // partitions are still computing.

  /// Register a persistent envelope. `cmd` is the equivalent one-shot
  /// kIsend/kIrecv command (buffer/count/dtype/peer/tag/comm); `partitions`
  /// 0 = plain persistent, else the partition count (1..kMaxPartitions,
  /// tag < kMaxPartBaseTag). Returns the channel's persistent-slot index.
  std::uint32_t persist_init(const Command& cmd, std::uint32_t partitions);
  /// Re-arm and publish one generation. Throws std::logic_error when the
  /// previous generation's completion has not been consumed.
  void persist_start(std::uint32_t idx);
  /// Publish partitions [lo, hi] of a started partitioned send as ready.
  /// Callable from any compute fiber; throws on double-mark or when no
  /// generation is active.
  void persist_pready(std::uint32_t idx, std::uint32_t lo, std::uint32_t hi);
  /// Spin on the generation's done flag WITHOUT freeing the pool slot;
  /// consuming the completion returns the request to kInactive. Trivially
  /// complete (empty Status) when no generation is active.
  void persist_wait(std::uint32_t idx, smpi::Status* st = nullptr);
  /// Nonblocking persist_wait.
  bool persist_test(std::uint32_t idx, smpi::Status* st = nullptr);
  /// Tear down: requires kInactive. The engine frees the MPI-level requests
  /// and the pool slot (ring FIFO runs it after every prior start).
  void persist_free(std::uint32_t idx);
  /// Bind `fn` to the CURRENT generation's completion. Unlike the one-shot
  /// attach, the slot is NOT consumed — the callback (or an inline run)
  /// returns the request to kInactive, so it may Start the next generation
  /// from inside the callback. Returns true when run inline.
  bool persist_attach_continuation(std::uint32_t idx, ContFn fn);
  [[nodiscard]] PState persist_state(std::uint32_t idx) const {
    return persist_.at(idx)->state;
  }
  [[nodiscard]] std::uint32_t persist_partitions(std::uint32_t idx) const {
    return persist_.at(idx)->partitions;
  }
  /// The pool slot a persistent request pins (tests: slot-reuse assertions).
  [[nodiscard]] std::uint32_t persist_pool_slot(std::uint32_t idx) const {
    return persist_.at(idx)->proxy;
  }

  /// Enqueue one shutdown command per engine (each engine exits after
  /// draining its lanes, its ring, its in-flight requests, and its
  /// continuation queue).
  void shutdown();

  // ---------------- engine side ----------------

  /// Body of offload fiber `idx` (one per ProxyOptions::proxy_count).
  /// Re-entering an engine whose previous run never cleared its identity
  /// throws — a recycled fiber pointer must never inherit engine identity.
  void engine_main(std::size_t idx = 0);

 private:
  struct Lane {
    Lane(std::size_t capacity, int rank, std::size_t index)
        : ring(capacity),
          gauge_name("lane" + std::to_string(index) + "_occupancy"),
          gauge(rank, gauge_name.c_str()) {}
    SpscLane<Command> ring;
    LaneStats stats;
    int owner_slot = -1;     ///< thread-registry slot bound to this lane row
    std::string gauge_name;  ///< stable storage for the gauge's name
    trace::Gauge gauge;
  };

  struct Inflight {
    smpi::Request real;
    std::uint32_t proxy;
    sim::Time issued_at;   ///< for the stuck-request watchdog
    bool flagged = false;  ///< already reported by the watchdog
    /// Persistent-slot index + 1 when this in-flight is one generation (or
    /// one partition) of a persistent request; 0 for one-shot requests. A
    /// persistent completion decrements the slot's `remaining` instead of
    /// completing the proxy slot directly.
    std::uint32_t persist = 0;
  };

  /// Engine-side home of one persistent request. Envelope fields are written
  /// once at init; generation state (armed/shipped/remaining, the lazily
  /// created MPI requests) is touched only from engine context; `state` and
  /// `marked` are app-side; `ready` is the one lock-free handoff (see
  /// core/part_ready.hpp). Lives in a deque: stable addresses, slots are
  /// never reused within a run.
  struct PersistSlot {
    // ---- envelope (init-time) ----
    bool is_send = false;
    const void* sbuf = nullptr;
    void* rbuf = nullptr;
    std::uint64_t count = 0;
    smpi::Datatype dtype = smpi::Datatype::kByte;
    int peer = -1;
    int tag = 0;
    smpi::Comm comm = smpi::kCommWorld;
    std::uint32_t partitions = 0;  ///< 0 = plain persistent
    std::uint32_t proxy = 0;       ///< pool slot pinned for the lifetime
    std::size_t home_engine = 0;   ///< engine_of of the equivalent one-shot
    // ---- app side ----
    PState state = PState::kInactive;
    std::uint32_t marked = 0;  ///< partitions pready'd this generation
    /// Partition-ready words, bit p%64 of word p/64 (partitioned sends).
    std::vector<PartReadyWord> ready;
    // ---- engine side ----
    smpi::Request mpi{};               ///< plain: the rc_ persistent request
    std::vector<smpi::Request> parts;  ///< partitioned: one per partition
    std::vector<std::uint64_t> shipped;  ///< mirror mask: partitions issued
    std::uint32_t remaining = 0;  ///< parts of this generation still in flight
    bool armed = false;  ///< partitioned send: generation open for shipping
  };

  /// One engine fiber's private state. Everything here is touched only by
  /// the fiber currently acting as this engine's consumer: the owner, or a
  /// thief holding `claim` (queues), or the owning fiber itself (inflight
  /// tracking, cont_ready — a thief issues stolen commands into ITS OWN
  /// Engine, never the victim's).
  struct Engine {
    Engine(std::size_t ring_capacity, smpi::RankCtx& rc, std::size_t idx)
        : index(idx),
          ring(ring_capacity),
          tail_line(rc.profile().mpsc_line_transfer),
          ring_gauge_name(idx == 0 ? std::string("ring_occupancy")
                                   : "ring" + std::to_string(idx) +
                                         "_occupancy"),
          inflight_gauge_name(idx == 0 ? std::string("inflight")
                                       : "inflight" + std::to_string(idx)),
          g_ring(rc.rank(), ring_gauge_name.c_str()),
          g_inflight(rc.rank(), inflight_gauge_name.c_str()) {}

    std::size_t index;
    MpscRing<Command> ring;
    /// Models this ring's tail cache line: producers pushing to it
    /// serialize here, each paying Profile::mpsc_line_transfer. Lane
    /// submitters never touch it — that is the point of the lanes.
    sim::Mutex tail_line;
    /// Consumer-ownership token over this engine's lane column + ring.
    DrainClaim claim;
    /// Fired slots whose callbacks this engine still owes. Bounded per pass
    /// by ProxyOptions::cont_run_bound so a burst of completions cannot
    /// starve the drain/testany loop.
    std::deque<std::uint32_t> cont_ready;
    /// In-flight tracking, kept incrementally: inflight and scratch_reqs
    /// are parallel arrays appended by issue(). A completion nulls its
    /// scratch_reqs entry in place (testany does this as a side effect), so
    /// the Testany span never has to be rebuilt and FIFO scan order — hence
    /// completion fairness — is preserved. Dead slots are reclaimed lazily
    /// by compact_inflight() once they outnumber live ones.
    std::vector<Inflight> inflight;
    std::vector<smpi::Request> scratch_reqs;
    std::size_t live_inflight = 0;
    std::size_t drain_cursor = 0;  ///< round-robin fairness cursor
    sim::Time next_watchdog_scan{0};
    /// This engine's fiber, set for the whole lifetime of engine_main:
    /// submits from it (continuation callbacks) take the direct-issue path
    /// and blocking waits from it are errors. Compared against the CURRENT
    /// fiber — other fibers interleave whenever the engine blocks. Cleared
    /// on EVERY exit path (RAII in engine_main), clean or unwinding.
    sim::Fiber* fiber = nullptr;
    std::string ring_gauge_name;      ///< stable storage for the gauge name
    std::string inflight_gauge_name;  ///< stable storage for the gauge name
    trace::Gauge g_ring;
    trace::Gauge g_inflight;
  };

  /// Which engine's queues carry `cmd`. Peer/communicator hash, chosen so
  /// per-envelope order survives sharding (see DESIGN.md §15): sends and
  /// specific receives go by (peer, comm); wildcard receives pin their
  /// communicator to hash(comm) — and stick: later receives on that
  /// communicator follow, so a wildcard can never overtake (or be overtaken
  /// by) a same-communicator receive posted around it; collectives and
  /// window management go by comm; RMA by window.
  std::size_t engine_of(const Command& cmd);

  /// The caller's lane for `engine_idx`, binding a lane row on first use.
  /// nullptr = shared ring; `overflow` reports WHY (true = more submitting
  /// fibers than lane rows, false = lanes disabled).
  Lane* lane_for_caller(std::size_t engine_idx, bool& overflow);
  std::uint32_t alloc_slot();
  /// Engine-context slot allocation: on exhaustion, drives progress (an
  /// engine can never block on its own completions notifier).
  std::uint32_t alloc_slot_engine(Engine& e);
  /// Engine-context submit: no lane/ring, no doorbell — the command issues
  /// directly on the posting engine. Used by continuations posting
  /// follow-ups.
  std::uint32_t submit_from_engine(Engine& e, Command cmd);
  void push_lane(Lane& lane, const Command& cmd);
  void push_shared_locked(Engine& e, const Command& cmd);
  /// Publish `cmd` to engine `eidx` (lane if the caller has one, else the
  /// shared ring) and ring the doorbell. The slot-allocation-free tail of
  /// submit(): persistent starts/frees arrive here with their pool slot
  /// already pinned.
  void push_to_engine(std::size_t eidx, const Command& cmd);

  /// The Engine owned by the calling fiber, or nullptr.
  Engine* engine_for_current_fiber();

  void issue(Engine& e, const Command& cmd);
  void track_inflight(Engine& e, smpi::Request real, std::uint32_t proxy,
                      std::uint32_t persist = 0);
  // ---- persistent engine side ----
  /// Process kStartPersistent: lazily create the MPI-level persistent
  /// request(s), then start (plain / partitioned recv) or arm for shipping
  /// (partitioned send).
  void engine_start_persistent(Engine& e, std::uint32_t idx);
  /// Process kFreePersistent: free the MPI-level requests and the pool slot.
  void engine_free_persistent(Engine& e, std::uint32_t idx);
  /// Ship every ready-but-unshipped partition owned by engine `e`
  /// (partition-hash sharding: disjoint per-engine sets, so sibling engines
  /// never race on a partition). Returns true when anything shipped.
  bool pump_persistent(Engine& e);
  /// Engine `e` owns partition `p` of slot `ps`.
  [[nodiscard]] std::size_t partition_engine(const PersistSlot& ps,
                                             std::uint32_t p) const;
  /// A ready-but-unshipped partition owned by `e` exists: the engine must
  /// not sleep past it (pready rings the rank doorbell, and this is the
  /// matching pre-sleep re-check).
  [[nodiscard]] bool persistent_ready_pending(const Engine& e) const;
  /// Publish a completion: done flag, stats, doorbell — and hand the slot
  /// to the discovering engine's continuation queue when one is armed.
  void complete_slot(Engine& e, std::uint32_t proxy, const smpi::Status& st);
  /// Queue drains. Contract: the caller holds `owner.claim` (as owner or
  /// thief) across the whole call — pops and the issues they feed must not
  /// interleave with another consumer of the same queues. `e` is the engine
  /// doing the work (tracks the resulting in-flights).
  bool drain_lanes_round(Engine& e);
  bool drain_shared(Engine& e);
  /// One bounded steal pass: take one busy sibling's claim, drain at most
  /// ProxyOptions::steal_bound of its commands (issued as OUR in-flights),
  /// release, and re-ring the doorbell if leftovers remain.
  bool steal_round(Engine& e);
  void process_command(Engine& e, const Command& cmd);
  /// This engine's own backlog (its lane column + its ring).
  [[nodiscard]] bool submissions_pending(const Engine& e) const;
  /// True when stealing is enabled and some OTHER engine has a backlog: an
  /// idle engine must keep polling (and retrying the steal) instead of
  /// sleeping — nothing rings our doorbell for a sibling's queue.
  [[nodiscard]] bool steal_work_available(const Engine& e) const;
  void drive_progress(Engine& e);
  /// Run up to ProxyOptions::cont_run_bound queued continuations; returns
  /// true when any ran (the engine re-drains before sleeping: callbacks
  /// post). Leftovers count into cont_deferred and run next pass.
  bool run_continuations(Engine& e);
  void compact_inflight(Engine& e);
  void watchdog_scan(Engine& e);

  smpi::RankCtx& rc_;
  ProxyOptions opts_;
  RequestPool pool_;
  /// The engines (unique_ptr: Engine owns the stable strings its trace
  /// gauges point into, so Engine must not relocate).
  std::vector<std::unique_ptr<Engine>> engines_;
  /// Sharded per-(thread, engine) submission lanes, a row-major grid:
  /// lanes_[row * engines_.size() + engine]. A submitting fiber binds a row
  /// on first use; engine e drains column e. (unique_ptr: Lane owns the
  /// stable string its trace gauge points into.)
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::uint32_t> lane_of_slot_;  ///< thread slot -> lane row
  std::size_t next_lane_ = 0;                ///< next unbound lane row
  /// Communicators pinned to hash(comm) routing because a wildcard receive
  /// was posted on them (sticky; see engine_of).
  std::vector<int> wildcard_comms_;
  /// Persistent slots, by index (deque: stable addresses; never reused
  /// within a run — persistent requests are long-lived by design).
  std::deque<std::unique_ptr<PersistSlot>> persist_;
  /// Pool slot -> persistent index + 1 (0 = one-shot). The continuation
  /// paths consult this to reset instead of free a persistent slot.
  std::vector<std::uint32_t> slot_persist_;
  /// Armed partitioned sends (fast-path gate for pump_persistent).
  std::size_t armed_psends_ = 0;
  /// Signalled by an engine whenever it publishes a done flag; application
  /// waiters use it to model their done-flag spin loop without event spam.
  sim::Notifier completions_;
  bool shutdown_requested_ = false;

  // ---- continuation subsystem ----
  /// Exactly-once arm/fire handoff, one slot per pool slot.
  ContTable cont_;
  /// Callback records, indexed by pool slot. Published to the engine by the
  /// arm() claim's release; read under the fire()-failure acquire.
  std::vector<ContFn> cont_fns_;

  OffloadStats stats_;
};

}  // namespace core
