// Typed counter handles bound to one (pid, series-name) pair.
//
//   Counter — monotonic accumulator (events processed, stalls, bytes);
//   Gauge   — instantaneous level (ring occupancy, in-flight operations).
//
// Both keep their live value even while tracing is disabled (reads are free
// and tests/stat trailers use them); they only *emit* a counter sample when
// the tracer is enabled, so the disabled cost is an add/store plus the usual
// one-branch check.
#pragma once

#include "trace/scope.hpp"
#include "trace/tracer.hpp"

namespace trace {

class Counter {
 public:
  Counter(int pid, const char* name) : pid_(pid), name_(name) {}

  void add(double d = 1) {
    value_ += d;
    if (!Tracer::on()) return;
    Tracer::instance().counter(ambient_ts(), pid_, name_, value_);
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  int pid_;
  const char* name_;
  double value_ = 0;
};

class Gauge {
 public:
  Gauge(int pid, const char* name) : pid_(pid), name_(name) {}

  void set(double v) {
    value_ = v;
    if (!Tracer::on()) return;
    Tracer::instance().counter(ambient_ts(), pid_, name_, value_);
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  int pid_;
  const char* name_;
  double value_ = 0;
};

}  // namespace trace
