// Chrome trace-event JSON serialization (the format Perfetto and
// chrome://tracing load). We emit the subset we record:
//   M  process_name / thread_name metadata (first, sorted by track),
//   X  complete spans with ts + dur,
//   B/E duration begin/end pairs,
//   i  thread-scoped instants,
//   C  counters ({"args":{"<name>":value}}).
// Timestamps are virtual nanoseconds rendered as microseconds with fixed
// 3-digit sub-µs precision via integer math, so identical event streams
// always serialize to byte-identical JSON (the determinism tests rely on
// this; no double formatting is involved in `ts`).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace trace {

class Tracer;

class ChromeWriter {
 public:
  /// Write everything `t` recorded as one {"traceEvents":[...]} document.
  static void write(const Tracer& t, std::ostream& os);

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string escape(std::string_view s);
};

}  // namespace trace
