// Virtual-time tracing: a process-wide event recorder.
//
// The Tracer collects *spans* (begin/end or complete, timestamped in
// virtual nanoseconds, one track per (pid, tid)) and *counters* (sampled
// numeric series) and serializes them as Chrome trace-event JSON
// (chrome_writer.hpp) loadable in Perfetto / chrome://tracing.
//
// Conventions used throughout this repo:
//   pid = simulated MPI rank  (−1 for process-global series),
//   tid = fiber id + 1        (0 is the "hw" track: NIC delivery, DMA),
//   plus the reserved NIC egress/ingress tids below.
//
// This header depends on nothing but the standard library so the sim layer
// itself can be instrumented (trace sits *below* sim in the link order;
// trace/scope.hpp adds the sim-aware conveniences for everything above).
//
// Cost contract: every recording entry point is inline and starts with
// `if (!on_) return;` — a disabled tracer costs one predictable branch and
// leaves virtual time untouched (the tracer never advances the clock, so
// enabling it cannot change simulated results either).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace trace {

/// Reserved tids for hardware tracks (fiber tids are id+1 and stay tiny).
constexpr std::uint64_t kHwTid = 0;                ///< scheduler-context events
constexpr std::uint64_t kNicTxTid = 1u << 20;      ///< NIC egress serialization
constexpr std::uint64_t kNicRxTid = (1u << 20) + 1;  ///< NIC ingress

/// One trace event. `ph` follows the Chrome trace-event phases we emit:
/// 'B'/'E' duration begin/end, 'X' complete, 'i' instant, 'C' counter.
struct Event {
  char ph = 'i';
  int pid = 0;
  std::uint64_t tid = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  ///< 'X' only
  double value = 0;         ///< 'C' only
  std::string name;
  const char* cat = "";     ///< static-storage category string
};

class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  /// Fast enabled check for call sites (one load + branch when off).
  [[nodiscard]] static bool on() { return on_; }
  static void set_enabled(bool e) { on_ = e; }

  // ---- recording (all no-ops while disabled) ----

  void begin(std::int64_t ts_ns, int pid, std::uint64_t tid, std::string name,
             const char* cat) {
    if (!on_) return;
    push(Event{'B', pid, tid, ts_ns, 0, 0, std::move(name), cat});
  }
  void end(std::int64_t ts_ns, int pid, std::uint64_t tid) {
    if (!on_) return;
    push(Event{'E', pid, tid, ts_ns, 0, 0, {}, ""});
  }
  void complete(std::int64_t ts_ns, std::int64_t dur_ns, int pid,
                std::uint64_t tid, std::string name, const char* cat) {
    if (!on_) return;
    push(Event{'X', pid, tid, ts_ns, dur_ns, 0, std::move(name), cat});
  }
  void instant(std::int64_t ts_ns, int pid, std::uint64_t tid,
               std::string name, const char* cat) {
    if (!on_) return;
    push(Event{'i', pid, tid, ts_ns, 0, 0, std::move(name), cat});
  }
  void counter(std::int64_t ts_ns, int pid, std::string name, double value) {
    if (!on_) return;
    push(Event{'C', pid, kHwTid, ts_ns, 0, value, std::move(name), ""});
  }

  /// Track metadata. Recorded even while disabled (bounded: one entry per
  /// track) so tracks registered before enable() still get names.
  void name_process(int pid, std::string name);
  void name_thread(int pid, std::uint64_t tid, std::string name);

  // ---- inspection / output ----

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  [[nodiscard]] const std::map<std::pair<int, std::uint64_t>, std::string>&
  thread_names() const {
    return thread_names_;
  }
  /// Events discarded because the in-memory limit was reached.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Cap on retained events (drops, deterministically, beyond it).
  void set_limit(std::size_t n) { limit_ = n; }

  /// Serialize everything recorded so far as Chrome trace JSON.
  void write_json(std::ostream& os) const;
  /// write_json to `path`; returns false (and keeps the events) on I/O error.
  bool write_file(const std::string& path) const;

  /// Drop all recorded events and track names (enabled state unchanged).
  void clear();

 private:
  Tracer();

  void push(Event&& e) {
    if (events_.size() >= limit_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(e));
  }

  inline static bool on_ = false;
  std::size_t limit_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, std::uint64_t>, std::string> thread_names_;
};

}  // namespace trace
