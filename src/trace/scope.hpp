// Sim-aware tracing conveniences: ambient timestamp/track helpers and the
// RAII Scope used to instrument layers above sim. Everything here resolves
// the virtual clock and the current fiber from the ambient sim::Engine, so
// call sites just name the span:
//
//   void RankCtx::handle_rts(...) {
//     trace::Scope s("match:rts", "mpi");
//     ...
//   }
//
// Outside a running engine (or from scheduler context) the timestamp is the
// engine's current time and the track falls back to kHwTid.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace trace {

inline std::int64_t ambient_ts() {
  sim::Engine* e = sim::Engine::current();
  return e == nullptr ? 0 : e->now().ns();
}

inline std::uint64_t ambient_tid() {
  sim::Engine* e = sim::Engine::current();
  sim::Fiber* f = e == nullptr ? nullptr : e->current_fiber();
  return f == nullptr ? kHwTid : f->id() + 1;
}

inline int ambient_pid() {
  sim::Engine* e = sim::Engine::current();
  sim::Fiber* f = e == nullptr ? nullptr : e->current_fiber();
  return f == nullptr ? 0 : f->trace_pid();
}

/// RAII span on the current fiber's track (or an explicit track).
class Scope {
 public:
  Scope(const char* name, const char* cat) {
    if (!Tracer::on()) return;
    open(ambient_pid(), ambient_tid(), name, cat);
  }
  Scope(std::string name, const char* cat) {
    if (!Tracer::on()) return;
    open(ambient_pid(), ambient_tid(), std::move(name), cat);
  }
  Scope(int pid, std::uint64_t tid, const char* name, const char* cat) {
    if (!Tracer::on()) return;
    open(pid, tid, name, cat);
  }
  ~Scope() {
    if (live_) Tracer::instance().end(ambient_ts(), pid_, tid_);
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  void open(int pid, std::uint64_t tid, std::string name, const char* cat) {
    live_ = true;
    pid_ = pid;
    tid_ = tid;
    Tracer::instance().begin(ambient_ts(), pid_, tid_, std::move(name), cat);
  }

  bool live_ = false;
  int pid_ = 0;
  std::uint64_t tid_ = 0;
};

/// Thread-scoped instant on the current fiber's track.
inline void instant(const char* name, const char* cat) {
  if (!Tracer::on()) return;
  Tracer::instance().instant(ambient_ts(), ambient_pid(), ambient_tid(), name,
                             cat);
}
inline void instant(int pid, std::uint64_t tid, const char* name,
                    const char* cat) {
  if (!Tracer::on()) return;
  Tracer::instance().instant(ambient_ts(), pid, tid, name, cat);
}

/// One counter sample at the current virtual time.
inline void counter(int pid, const char* name, double value) {
  if (!Tracer::on()) return;
  Tracer::instance().counter(ambient_ts(), pid, name, value);
}

}  // namespace trace
