#include "trace/chrome_writer.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "trace/tracer.hpp"

namespace trace {

namespace {

/// Nanoseconds → microseconds with exactly three decimals, integer math.
std::string us_str(std::int64_t ns) {
  char buf[40];
  const char* sign = ns < 0 ? "-" : "";
  const std::int64_t a = ns < 0 ? -ns : ns;
  std::snprintf(buf, sizeof buf, "%s%" PRId64 ".%03" PRId64, sign, a / 1000,
                a % 1000);
  return buf;
}

std::string value_str(double v) {
  char buf[40];
  // %.17g round-trips any double; trim the common integer case for
  // readability (counters are almost always whole numbers).
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

void write_common(std::ostream& os, char ph, int pid, std::uint64_t tid,
                  std::int64_t ts_ns) {
  os << "{\"ph\":\"" << ph << "\",\"ts\":" << us_str(ts_ns)
     << ",\"pid\":" << pid << ",\"tid\":" << tid;
}

}  // namespace

std::string ChromeWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void ChromeWriter::write(const Tracer& t, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Track metadata first (maps are ordered → deterministic emission order).
  for (const auto& [pid, name] : t.process_names()) {
    sep();
    write_common(os, 'M', pid, 0, 0);
    os << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << escape(name)
       << "\"}}";
  }
  for (const auto& [key, name] : t.thread_names()) {
    sep();
    write_common(os, 'M', key.first, key.second, 0);
    os << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape(name)
       << "\"}}";
  }

  for (const Event& e : t.events()) {
    sep();
    write_common(os, e.ph, e.pid, e.tid, e.ts_ns);
    switch (e.ph) {
      case 'X':
        os << ",\"dur\":" << us_str(e.dur_ns) << ",\"name\":\""
           << escape(e.name) << "\",\"cat\":\"" << escape(e.cat) << "\"}";
        break;
      case 'C':
        os << ",\"name\":\"" << escape(e.name) << "\",\"args\":{\""
           << escape(e.name) << "\":" << value_str(e.value) << "}}";
        break;
      case 'i':
        os << ",\"s\":\"t\",\"name\":\"" << escape(e.name) << "\",\"cat\":\""
           << escape(e.cat) << "\"}";
        break;
      case 'E':
        os << '}';
        break;
      default:  // 'B'
        os << ",\"name\":\"" << escape(e.name) << "\",\"cat\":\""
           << escape(e.cat) << "\"}";
    }
  }
  if (t.dropped() > 0) {
    sep();
    write_common(os, 'i', -1, 0, 0);
    os << ",\"s\":\"g\",\"name\":\"dropped " << t.dropped()
       << " events (MPIOFF_TRACE_LIMIT)\",\"cat\":\"trace\"}";
  }
  os << "\n]}\n";
}

}  // namespace trace
