#include "trace/tracer.hpp"

#include <cstdlib>
#include <fstream>

#include "trace/chrome_writer.hpp"

namespace trace {

namespace {
std::size_t env_limit() {
  // In-memory cap; a full-length bench with tracing on stays well under it,
  // but a runaway loop must not eat the machine.
  constexpr std::size_t kDefault = 2'000'000;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup
  const char* s = std::getenv("MPIOFF_TRACE_LIMIT");
  if (s == nullptr || *s == '\0') return kDefault;
  const long long v = std::atoll(s);
  return v > 0 ? static_cast<std::size_t>(v) : kDefault;
}
}  // namespace

Tracer::Tracer() : limit_(env_limit()) {}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::name_process(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void Tracer::name_thread(int pid, std::uint64_t tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void Tracer::write_json(std::ostream& os) const {
  ChromeWriter::write(*this, os);
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  write_json(f);
  f.flush();
  return f.good();
}

void Tracer::clear() {
  events_.clear();
  process_names_.clear();
  thread_names_.clear();
  dropped_ = 0;
}

}  // namespace trace
