#include "trace/tracer.hpp"

#include <fstream>

#include "trace/chrome_writer.hpp"
#include "util/env.hpp"

namespace trace {

namespace {
std::size_t env_limit() {
  // In-memory cap; a full-length bench with tracing on stays well under it,
  // but a runaway loop must not eat the machine.
  constexpr std::size_t kDefault = 2'000'000;
  return static_cast<std::size_t>(
      env_util::positive_or("MPIOFF_TRACE_LIMIT", kDefault));
}
}  // namespace

Tracer::Tracer() : limit_(env_limit()) {}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::name_process(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void Tracer::name_thread(int pid, std::uint64_t tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void Tracer::write_json(std::ostream& os) const {
  ChromeWriter::write(*this, os);
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  write_json(f);
  f.flush();
  return f.good();
}

void Tracer::clear() {
  events_.clear();
  process_names_.clear();
  thread_names_.clear();
  dropped_ = 0;
}

}  // namespace trace
