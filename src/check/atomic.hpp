// chk::atomic / chk::var — the instrumented atomics policy.
//
// Drop-in replacements for std::atomic and plain members, usable only inside
// a chk::explore() body. Every access traps into the running Checker, which
// turns it into a scheduling point (atomics) or a happens-before-checked
// event (vars). chk::ModelAtomics packages them as a core:: atomics policy so
// the *production* MpscRing / RequestPoolT templates run unmodified under the
// model checker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

#include "check/checker.hpp"

namespace chk {

namespace detail {

inline Checker& ck() {
  Checker* c = Checker::current();
  if (c == nullptr) {
    throw std::logic_error(
        "chk::atomic / chk::var used outside a chk::explore body");
  }
  return *c;
}

inline std::memory_order cas_failure_order(std::memory_order success) {
  switch (success) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return success;
  }
}

}  // namespace detail

/// Model atomic. Holds no value itself: the Checker keeps the location's
/// full modification order so loads can legally return stale values.
template <class T>
class atomic {
  static_assert(std::is_integral_v<T> && sizeof(T) <= sizeof(std::uint64_t),
                "chk::atomic models integral values up to 64 bits");

 public:
  atomic() : atomic(T{}) {}
  atomic(T v)  // NOLINT(google-explicit-constructor): mirrors std::atomic
      : loc_(detail::ck().register_loc(false, to_u64(v))) {}

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    return from_u64(detail::ck().atomic_load(loc_, mo));
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    detail::ck().atomic_store(loc_, to_u64(v), mo);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    std::uint64_t e = to_u64(expected);
    const bool ok =
        detail::ck().atomic_cas(loc_, e, to_u64(desired), success, failure);
    if (!ok) expected = from_u64(e);
    return ok;
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_weak(expected, desired, mo,
                                 detail::cas_failure_order(mo));
  }
  // The model has no spurious CAS failures, so strong == weak.
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    return compare_exchange_weak(expected, desired, success, failure);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_weak(expected, desired, mo);
  }
  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return from_u64(detail::ck().atomic_fetch_add(loc_, to_u64(delta), mo));
  }
  T fetch_or(T bits, std::memory_order mo = std::memory_order_seq_cst) {
    return from_u64(detail::ck().atomic_fetch_or(loc_, to_u64(bits), mo));
  }

  [[nodiscard]] int loc() const { return loc_; }

 private:
  static std::uint64_t to_u64(T v) {
    return static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  }
  static T from_u64(std::uint64_t v) { return static_cast<T>(v); }

  int loc_;
};

/// Model wrapper for plain shared data. The value lives here (arbitrary T),
/// but every access is reported to the vector-clock race detector.
template <class T>
class var {
 public:
  var() : loc_(detail::ck().register_loc(true, 0)) {}

  var(const var&) = delete;
  var& operator=(const var&) = delete;

  T& ref_w() {
    detail::ck().var_write(loc_);
    return value_;
  }
  const T& ref_r() const {
    detail::ck().var_read(loc_);
    return value_;
  }

  [[nodiscard]] int loc() const { return loc_; }

 private:
  int loc_;
  T value_{};
};

/// core:: atomics policy backed by the model checker.
struct ModelAtomics {
  template <class T>
  using atomic = chk::atomic<T>;

  template <class T>
  using var = chk::var<T>;

  template <class T>
  static void set_name(const atomic<T>& a, const char* base, std::size_t idx) {
    detail::ck().set_loc_name(a.loc(), base, idx, /*indexed=*/true);
  }
  template <class T>
  static void set_name(const atomic<T>& a, const char* base) {
    detail::ck().set_loc_name(a.loc(), base, 0, /*indexed=*/false);
  }
  template <class T>
  static void set_name(const var<T>& v, const char* base, std::size_t idx) {
    detail::ck().set_loc_name(v.loc(), base, idx, /*indexed=*/true);
  }
  template <class T>
  static void set_name(const var<T>& v, const char* base) {
    detail::ck().set_loc_name(v.loc(), base, 0, /*indexed=*/false);
  }
};

}  // namespace chk
