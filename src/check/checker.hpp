// Loom/relacy-style model checker for the lock-free offload protocols.
//
// A Checker runs a *spec body* many times, exploring a different thread
// interleaving on each execution. Spec bodies construct the real production
// structures (MpscRing / RequestPoolT) instantiated with chk::ModelAtomics,
// spawn 2-4 cooperative model threads, and assert protocol invariants. The
// checker provides:
//
//  * a cooperative scheduler that preempts at every atomic access, explored
//    either exhaustively (preemption-bounded stateless DFS over the choice
//    tree) or randomly (seeded, fully replayable);
//  * a weak-memory model: every atomic location keeps its full modification
//    order, and relaxed/acquire loads may return any *coherence-legal* stale
//    value, so a missing release/acquire edge actually manifests instead of
//    being masked by the host's x86 TSO;
//  * a vector-clock happens-before race detector for plain (non-atomic)
//    payloads wrapped in chk::var — e.g. the ring's Cell::val and the
//    request pool's Status — which flags any access pair not ordered by the
//    surrounding acquire/release protocol;
//  * deterministic failure reports: the full interleaving trace plus the
//    seed (random mode) or choice trail (exhaustive mode) to replay it.
//
// Model limits (see DESIGN.md §9): bounded preemptions and stale reads,
// acquire/release/acq_rel plus an approximate seq_cst (global SC clock);
// no std::atomic_thread_fence modeling, no spurious CAS failures, and
// consume is treated as acquire.
#pragma once

#include <ucontext.h>

#include <array>
#include <atomic>  // std::memory_order
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "check/clock.hpp"

namespace chk {

// ---------------------------------------------------------------- options ---

enum class OpKind : std::uint8_t { kLoad, kStore, kRmw };
enum class Side : std::uint8_t { kNone, kAcquire, kRelease };

const char* op_kind_name(OpKind k);
const char* side_name(Side s);

/// A synchronization site: ops of one kind carrying one acquire/release side
/// on one (base-named) location. Sites are what the mutation suite weakens.
struct Site {
  std::string loc;
  OpKind op = OpKind::kLoad;
  Side side = Side::kNone;

  friend bool operator<(const Site& a, const Site& b) {
    if (a.loc != b.loc) return a.loc < b.loc;
    if (a.op != b.op) return a.op < b.op;
    return a.side < b.side;
  }
  friend bool operator==(const Site& a, const Site& b) {
    return a.loc == b.loc && a.op == b.op && a.side == b.side;
  }
  [[nodiscard]] std::string str() const;
};

/// An intentional weakening applied while exploring: drop the given side
/// (release -> relaxed, acq_rel -> one-sided) from every matching op.
struct Mutation {
  std::string loc;
  OpKind op = OpKind::kLoad;
  Side drop = Side::kNone;

  [[nodiscard]] bool active() const { return drop != Side::kNone; }
  [[nodiscard]] std::string str() const;
  static Mutation of(const Site& s) { return Mutation{s.loc, s.op, s.side}; }
};

enum class Mode : std::uint8_t { kExhaustive, kRandom };

struct Options {
  Mode mode = Mode::kExhaustive;
  /// Exhaustive: max context switches away from a still-runnable thread.
  int preemption_bound = 2;
  /// Max stale (non-newest) values a thread may observe per location; after
  /// that, loads return the newest visible store (models eventual
  /// cache-coherence visibility and keeps spin loops finite).
  int stale_read_bound = 2;
  std::uint64_t max_executions = 200000;  ///< exhaustive-mode cap
  std::uint64_t max_steps = 100000;       ///< per-execution step cap
  std::uint64_t iterations = 2000;        ///< random-mode executions
  std::uint64_t seed = 1;                 ///< random-mode base seed
  /// Replay a single execution from a failure report, e.g. "3.0.1".
  std::string replay_trail;
  Mutation mutation{};
};

struct Result {
  bool failed = false;
  std::string message;       ///< first violation
  std::string trace;         ///< formatted interleaving of the failure
  std::uint64_t executions = 0;
  bool complete = false;     ///< exhaustive: the bounded space was exhausted
  std::uint64_t failing_seed = 0;  ///< random mode: seed to replay
  std::string failing_trail;       ///< exhaustive mode: trail to replay
  std::vector<Site> sites;   ///< sync sites observed (mutation candidates)

  [[nodiscard]] std::string str() const;
};

// ---------------------------------------------------------------- checker ---

class Checker;

/// Handle passed to the spec body for spawning model threads.
class Sim {
 public:
  explicit Sim(Checker* ck) : ck_(ck) {}
  /// Run the given thread bodies to completion under the explorer. May be
  /// called once per execution; returns after all threads finished (the
  /// caller then holds a happens-after edge from every thread).
  void threads(std::vector<std::function<void()>> bodies);
  /// Spin-wait hint from inside a model thread: deprioritize this thread
  /// until another has run. Required in spec-level retry loops.
  static void yield();

 private:
  Checker* ck_;
};

/// Assertion usable from model threads and from the spec body.
void check(bool cond, const char* msg);

/// Explore all interleavings of `body` per `opt`. The body is re-run once
/// per execution and must be self-contained (construct state, run threads,
/// assert postconditions).
Result explore(const Options& opt, const std::function<void(Sim&)>& body);

namespace detail {

/// Thrown inside a model thread to unwind it after a recorded failure.
struct AbortThread {};
/// Thrown on the main context to skip the rest of a failed execution.
struct ExecutionAbort {};

struct StoreElem {
  std::uint64_t value = 0;
  int tid = 0;
  std::uint32_t when = 0;   ///< writer clock[tid] at the store
  VectorClock msg;          ///< release message (carried through RMWs)
  VectorClock when_clock;   ///< writer's full clock (visibility floor)
  std::uint64_t step = 0;
};

struct Loc {
  bool is_var = false;
  std::string base = "loc";
  std::size_t idx = 0;
  bool indexed = false;
  // Atomic state.
  std::vector<StoreElem> hist;
  std::array<int, kMaxThreads> last_seen{};   ///< coherence floor per thread
  std::array<int, kMaxThreads> stale_used{};
  std::uint8_t site_bits = 0;  // kSiteLoadAcq | kSiteStoreRel | ...
  // Plain-var state (FastTrack-style last write + read clock).
  int w_tid = -1;
  std::uint32_t w_when = 0;
  std::uint64_t w_step = 0;
  std::array<std::uint32_t, kMaxThreads> r_when{};
  std::array<std::uint64_t, kMaxThreads> r_step{};

  [[nodiscard]] std::string name() const {
    return indexed ? base + "[" + std::to_string(idx) + "]" : base;
  }
};

enum class Ev : std::uint8_t {
  kLoad, kLoadStale, kStore, kCasOk, kCasFail, kRmw, kVarRead, kVarWrite,
  kYield, kSwitch, kSpawn, kDone, kFail,
};

struct TraceEvent {
  std::uint32_t step = 0;
  std::int8_t tid = 0;
  Ev ev = Ev::kLoad;
  std::int32_t loc = -1;
  std::uint64_t value = 0;
  std::uint64_t aux = 0;
  std::uint8_t order = 0;  // std::memory_order as int
};

struct ModelThread {
  int tid = 0;
  std::function<void()> body;
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;
  bool done = false;
  bool yielded = false;
  VectorClock clock;
  Checker* ck = nullptr;
};

}  // namespace detail

class Checker {
 public:
  explicit Checker(Options opt);
  ~Checker();

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// The checker driving the current execution (set inside run()).
  static Checker* current();

  Result run(const std::function<void(Sim&)>& body);

  // ---- hooks called by chk::atomic / chk::var ----
  int register_loc(bool is_var, std::uint64_t initial);
  void set_loc_name(int loc, const char* base, std::size_t idx, bool indexed);
  std::uint64_t atomic_load(int loc, std::memory_order mo);
  void atomic_store(int loc, std::uint64_t v, std::memory_order mo);
  bool atomic_cas(int loc, std::uint64_t& expected, std::uint64_t desired,
                  std::memory_order success, std::memory_order failure);
  std::uint64_t atomic_fetch_add(int loc, std::uint64_t delta,
                                 std::memory_order mo);
  std::uint64_t atomic_fetch_or(int loc, std::uint64_t bits,
                                std::memory_order mo);
  void var_write(int loc);
  void var_read(int loc);

  // ---- spec-side entry points ----
  void run_threads(std::vector<std::function<void()>> bodies);
  void yield();
  /// Record a failure and abort the current execution (throws).
  [[noreturn]] void fail_here(std::string msg);

 private:
  friend struct detail::ModelThread;

  struct Choice {
    int n = 0;
    int chosen = 0;
  };

  void begin_execution(std::uint64_t exec_index);
  void finish_execution();
  bool advance_trail();
  int choose(int n);
  void record_failure(std::string msg);
  void schedule_suspend();  ///< fiber side: give control back to the driver
  void resume(int tid);     ///< driver side: run thread until next suspend
  void pre_op();
  std::memory_order effective_order(const detail::Loc& l, OpKind op,
                                    std::memory_order req) const;
  void note_sites(detail::Loc& l, OpKind op, std::memory_order success,
                  std::memory_order failure);
  int pick_load_index(detail::Loc& l, int tid, const VectorClock& c,
                      bool* stale);
  void trace(detail::Ev ev, int loc, std::uint64_t value, std::uint64_t aux,
             std::memory_order mo);
  std::string format_trace() const;

  static void trampoline(unsigned int hi, unsigned int lo);

  Options opt_;
  // Per-run state.
  std::vector<std::unique_ptr<char[]>> stack_pool_;  ///< recycled fiber stacks
  std::uint64_t exec_index_ = 0;
  std::vector<Choice> trail_;
  std::size_t trail_pos_ = 0;
  bool replay_ = false;
  std::set<Site> sites_;
  std::mt19937_64 rng_;
  // Per-execution state.
  std::vector<detail::Loc> locs_;
  std::vector<std::unique_ptr<detail::ModelThread>> threads_;  // [0] = main
  std::vector<detail::TraceEvent> events_;
  VectorClock sc_clock_;
  ucontext_t main_ctx_{};
  int current_tid_ = 0;
  int last_tid_ = -1;
  bool last_voluntary_ = false;
  int preemptions_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t progress_marker_ = 0;
  std::uint64_t allyield_marker_ = ~0ull;
  bool failed_ = false;
  std::string message_;
  bool in_threads_ = false;
};

}  // namespace chk
