#include "check/specs.hpp"

#include <cstdint>
#include <set>
#include <stdexcept>

#include <span>

#include "core/cont_table.hpp"
#include "core/mpsc_ring.hpp"
#include "core/request_pool.hpp"
#include "core/spsc_lane.hpp"
#include "mpi/types.hpp"

namespace chk::specs {

namespace {

struct RingCmd {
  int producer = -1;
  int seqno = -1;
};

using ModelPool = core::RequestPoolT<ModelAtomics>;

}  // namespace

Result check_ring(const Options& opt, const RingCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::MpscRing<RingCmd, ModelAtomics> ring(cfg.capacity);
    const int total = cfg.producers * cfg.items_per_producer;
    // Consumer-local tallies: plain memory is fine, only one thread touches
    // them (the payload itself goes through the race-checked ring.val vars).
    std::vector<int> next_seq(static_cast<std::size_t>(cfg.producers), 0);
    std::vector<int> got(static_cast<std::size_t>(cfg.producers), 0);
    int popped = 0;

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(cfg.producers) + 1);
    for (int p = 0; p < cfg.producers; ++p) {
      bodies.emplace_back([&ring, &cfg, p] {
        for (int s = 0; s < cfg.items_per_producer; ++s) {
          while (!ring.try_push(RingCmd{p, s})) Sim::yield();
        }
      });
    }
    bodies.emplace_back([&] {
      RingCmd c;
      while (popped < total) {
        if (!ring.try_pop(c)) {
          Sim::yield();
          continue;
        }
        check(c.producer >= 0 && c.producer < cfg.producers,
              "popped command has a valid producer id");
        const auto p = static_cast<std::size_t>(c.producer);
        check(c.seqno == next_seq[p], "commands are FIFO per producer");
        ++next_seq[p];
        ++got[p];
        ++popped;
      }
    });
    sim.threads(std::move(bodies));

    for (int p = 0; p < cfg.producers; ++p) {
      check(got[static_cast<std::size_t>(p)] == cfg.items_per_producer,
            "no command lost or duplicated");
    }
    check(ring.empty_approx(), "ring drained");
  });
}

Result check_pool(const Options& opt, const PoolCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    ModelPool pool(cfg.capacity);
    // One ownership cell per slot. Slot handoff (free -> alloc) must carry a
    // happens-before edge, or two owners' writes race here. alloc() itself
    // also writes the slot's Status var, so corruption inside the pool is
    // usually caught before these cells even trip.
    std::vector<var<int>> owner(cfg.capacity);
    for (std::uint32_t i = 0; i < cfg.capacity; ++i) {
      ModelAtomics::set_name(owner[i], "spec.owner", i);
    }

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(cfg.threads));
    for (int t = 0; t < cfg.threads; ++t) {
      bodies.emplace_back([&pool, &owner, &cfg, t] {
        for (int r = 0; r < cfg.rounds; ++r) {
          std::uint32_t idx = ModelPool::kNil;
          while ((idx = pool.alloc()) == ModelPool::kNil) Sim::yield();
          check(idx < cfg.capacity, "alloc returned an in-range slot");
          owner[idx].ref_w() = t;
          Sim::yield();  // widen the window for a second owner to collide
          check(owner[idx].ref_r() == t, "slot ownership is exclusive");
          pool.free(idx);
        }
      });
    }
    sim.threads(std::move(bodies));

    check(pool.free_count() == cfg.capacity,
          "every slot returned to the free list exactly once");
  });
}

Result check_lane(const Options& opt, const LaneCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::SpscLane<int, ModelAtomics> lane(cfg.capacity);
    int popped = 0;  // consumer-local; read by the main body after join

    sim.threads({
        // Producer: first half pushed singly, second half published through
        // one try_push_n batch, retrying the unconsumed suffix — this drives
        // both the single-item and the batched tail-publish paths.
        [&lane, &cfg] {
          const int half = cfg.items / 2;
          for (int i = 0; i < half; ++i) {
            while (!lane.try_push(i)) Sim::yield();
          }
          std::vector<int> batch;
          for (int i = half; i < cfg.items; ++i) batch.push_back(i);
          std::span<int> rest(batch);
          while (!rest.empty()) {
            rest = rest.subspan(lane.try_push_n(rest));
            if (!rest.empty()) Sim::yield();
          }
        },
        // Consumer: the stream must come out exactly 0..items-1.
        [&lane, &cfg, &popped] {
          int v = -1;
          while (popped < cfg.items) {
            if (!lane.try_pop(v)) {
              Sim::yield();
              continue;
            }
            check(v == popped, "lane pops FIFO, nothing lost or duplicated");
            ++popped;
          }
        },
    });

    check(popped == cfg.items, "consumer drained every item");
    check(lane.empty_approx(), "lane drained");
  });
}

Result check_handshake(const Options& opt) {
  return explore(opt, [](Sim& sim) {
    struct HsCmd {
      int op = 0;
      std::uint32_t req = ModelPool::kNil;
    };
    core::MpscRing<HsCmd, ModelAtomics> ring(2);
    ModelPool pool(2);
    atomic<int> doorbell{0};
    ModelAtomics::set_name(doorbell, "doorbell");
    // Published ONLY by the doorbell's release/acquire pair: the engine reads
    // it before popping the ring, so the ring's seq protocol cannot mask a
    // weakened doorbell.
    var<int> arg;
    ModelAtomics::set_name(arg, "hs.arg");

    sim.threads({
        // Application thread: alloc -> publish arg -> enqueue -> doorbell ->
        // wait for completion -> validate Status -> free.
        [&] {
          std::uint32_t idx = ModelPool::kNil;
          while ((idx = pool.alloc()) == ModelPool::kNil) Sim::yield();
          arg.ref_w() = 41;
          while (!ring.try_push(HsCmd{1, idx})) Sim::yield();
          doorbell.store(1, std::memory_order_release);
          while (!pool.done(idx)) Sim::yield();
          check(pool.status(idx).bytes == 42,
                "status payload round-tripped through the handshake");
          pool.free(idx);
        },
        // Engine thread: doorbell -> arg -> pop -> complete.
        [&] {
          while (doorbell.load(std::memory_order_acquire) == 0) Sim::yield();
          const int a = arg.ref_r();
          HsCmd c;
          while (!ring.try_pop(c)) Sim::yield();
          check(c.op == 1, "engine popped the issued command");
          smpi::Status st;
          st.bytes = static_cast<std::uint64_t>(a) + 1;
          pool.complete(c.req, st);
        },
    });

    check(pool.free_count() == 2, "request slot returned to the pool");
  });
}

Result check_cont(const Options& opt) {
  return explore(opt, [](Sim& sim) {
    core::ContTableT<ModelAtomics> table(1);
    // What each side publishes before its claim CAS. The callback reads
    // BOTH — so whichever side loses the race, a weakened edge on the
    // winner's publication is a detectable race on one of these cells.
    var<int> payload;  // completer: the Status/done-flag stand-in
    var<int> record;   // attacher: the callback record stand-in
    ModelAtomics::set_name(payload, "cont.payload");
    ModelAtomics::set_name(record, "cont.record");
    int executed = 0;  // only the single callback runner increments
    auto run_cb = [&] {
      check(record.ref_r() == 1, "callback record visible to the runner");
      check(payload.ref_r() == 42, "completion payload visible to the runner");
      ++executed;
    };

    sim.threads({
        // Completer (the offload engine): publish payload, then fire. A true
        // return means a continuation was already armed — run it.
        [&] {
          payload.ref_w() = 42;
          if (table.fire(0)) run_cb();
        },
        // Attacher (the application's .then()): publish the record, then
        // arm. A true return means the completion already fired — run
        // inline.
        [&] {
          record.ref_w() = 1;
          if (table.arm(0)) run_cb();
        },
    });

    check(executed == 1, "callback ran exactly once");
    check(table.state_of(0) != core::ContTableT<ModelAtomics>::kIdle,
          "slot is claimed by exactly one side after the race");
  });
}

Result run_spec(const std::string& spec, const Options& opt) {
  if (spec == "ring") return check_ring(opt);
  if (spec == "pool") return check_pool(opt);
  if (spec == "lane") return check_lane(opt);
  if (spec == "handshake") return check_handshake(opt);
  if (spec == "cont") return check_cont(opt);
  throw std::invalid_argument("unknown spec: " + spec);
}

std::vector<MutationCase> mutation_matrix() {
  return {
      // MpscRing seq protocol (both producer and consumer sides share the
      // ring.seq base location; the ring spec catches either side).
      {{"ring.seq", OpKind::kLoad, Side::kAcquire}, "ring"},
      {{"ring.seq", OpKind::kStore, Side::kRelease}, "ring"},
      // SpscLane cached-index protocol: tail release/acquire publishes the
      // payload, head release/acquire returns cells for reuse (the lane spec
      // wraps around, so a weakened head edge races on the recycled cell).
      {{"lane.tail", OpKind::kLoad, Side::kAcquire}, "lane"},
      {{"lane.tail", OpKind::kStore, Side::kRelease}, "lane"},
      {{"lane.head", OpKind::kLoad, Side::kAcquire}, "lane"},
      {{"lane.head", OpKind::kStore, Side::kRelease}, "lane"},
      // RequestPool free-list handoff.
      {{"pool.head", OpKind::kLoad, Side::kAcquire}, "pool"},
      {{"pool.head", OpKind::kRmw, Side::kAcquire}, "pool"},
      {{"pool.head", OpKind::kRmw, Side::kRelease}, "pool"},
      // Completion publish and the doorbell edge: cross-thread only in the
      // handshake spec.
      {{"pool.done", OpKind::kLoad, Side::kAcquire}, "handshake"},
      {{"pool.done", OpKind::kStore, Side::kRelease}, "handshake"},
      {{"doorbell", OpKind::kLoad, Side::kAcquire}, "handshake"},
      {{"doorbell", OpKind::kStore, Side::kRelease}, "handshake"},
      // ContTable claim CAS: the release half of a successful claim
      // publishes that side's record; the acquire half of the FAILED claim
      // is what lets the loser read it before running the callback.
      {{"cont.state", OpKind::kRmw, Side::kAcquire}, "cont"},
      {{"cont.state", OpKind::kRmw, Side::kRelease}, "cont"},
  };
}

std::vector<Site> collect_sites() {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 8;
  opt.seed = 12345;
  std::set<Site> all;
  for (const char* spec : {"ring", "pool", "lane", "handshake", "cont"}) {
    const Result r = run_spec(spec, opt);
    if (r.failed) {
      throw std::logic_error(std::string("collect_sites: spec '") + spec +
                             "' failed unmutated: " + r.message);
    }
    all.insert(r.sites.begin(), r.sites.end());
  }
  return {all.begin(), all.end()};
}

}  // namespace chk::specs
