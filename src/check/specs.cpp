#include "check/specs.hpp"

#include <cstdint>
#include <set>
#include <stdexcept>

#include <span>

#include "core/cont_table.hpp"
#include "core/drain_claim.hpp"
#include "core/mpsc_ring.hpp"
#include "core/part_ready.hpp"
#include "core/request_pool.hpp"
#include "core/spsc_lane.hpp"
#include "mpi/types.hpp"

namespace chk::specs {

namespace {

struct RingCmd {
  int producer = -1;
  int seqno = -1;
};

using ModelPool = core::RequestPoolT<ModelAtomics>;

}  // namespace

Result check_ring(const Options& opt, const RingCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::MpscRing<RingCmd, ModelAtomics> ring(cfg.capacity);
    const int total = cfg.producers * cfg.items_per_producer;
    // Consumer-local tallies: plain memory is fine, only one thread touches
    // them (the payload itself goes through the race-checked ring.val vars).
    std::vector<int> next_seq(static_cast<std::size_t>(cfg.producers), 0);
    std::vector<int> got(static_cast<std::size_t>(cfg.producers), 0);
    int popped = 0;

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(cfg.producers) + 1);
    for (int p = 0; p < cfg.producers; ++p) {
      bodies.emplace_back([&ring, &cfg, p] {
        for (int s = 0; s < cfg.items_per_producer; ++s) {
          while (!ring.try_push(RingCmd{p, s})) Sim::yield();
        }
      });
    }
    bodies.emplace_back([&] {
      RingCmd c;
      while (popped < total) {
        if (!ring.try_pop(c)) {
          Sim::yield();
          continue;
        }
        check(c.producer >= 0 && c.producer < cfg.producers,
              "popped command has a valid producer id");
        const auto p = static_cast<std::size_t>(c.producer);
        check(c.seqno == next_seq[p], "commands are FIFO per producer");
        ++next_seq[p];
        ++got[p];
        ++popped;
      }
    });
    sim.threads(std::move(bodies));

    for (int p = 0; p < cfg.producers; ++p) {
      check(got[static_cast<std::size_t>(p)] == cfg.items_per_producer,
            "no command lost or duplicated");
    }
    check(ring.empty_approx(), "ring drained");
  });
}

Result check_pool(const Options& opt, const PoolCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    ModelPool pool(cfg.capacity);
    // One ownership cell per slot. Slot handoff (free -> alloc) must carry a
    // happens-before edge, or two owners' writes race here. alloc() itself
    // also writes the slot's Status var, so corruption inside the pool is
    // usually caught before these cells even trip.
    std::vector<var<int>> owner(cfg.capacity);
    for (std::uint32_t i = 0; i < cfg.capacity; ++i) {
      ModelAtomics::set_name(owner[i], "spec.owner", i);
    }

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(cfg.threads));
    for (int t = 0; t < cfg.threads; ++t) {
      bodies.emplace_back([&pool, &owner, &cfg, t] {
        for (int r = 0; r < cfg.rounds; ++r) {
          std::uint32_t idx = ModelPool::kNil;
          while ((idx = pool.alloc()) == ModelPool::kNil) Sim::yield();
          check(idx < cfg.capacity, "alloc returned an in-range slot");
          owner[idx].ref_w() = t;
          Sim::yield();  // widen the window for a second owner to collide
          check(owner[idx].ref_r() == t, "slot ownership is exclusive");
          pool.free(idx);
        }
      });
    }
    sim.threads(std::move(bodies));

    check(pool.free_count() == cfg.capacity,
          "every slot returned to the free list exactly once");
  });
}

Result check_lane(const Options& opt, const LaneCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::SpscLane<int, ModelAtomics> lane(cfg.capacity);
    int popped = 0;  // consumer-local; read by the main body after join

    sim.threads({
        // Producer: first half pushed singly, second half published through
        // one try_push_n batch, retrying the unconsumed suffix — this drives
        // both the single-item and the batched tail-publish paths.
        [&lane, &cfg] {
          const int half = cfg.items / 2;
          for (int i = 0; i < half; ++i) {
            while (!lane.try_push(i)) Sim::yield();
          }
          std::vector<int> batch;
          for (int i = half; i < cfg.items; ++i) batch.push_back(i);
          std::span<int> rest(batch);
          while (!rest.empty()) {
            rest = rest.subspan(lane.try_push_n(rest));
            if (!rest.empty()) Sim::yield();
          }
        },
        // Consumer: the stream must come out exactly 0..items-1.
        [&lane, &cfg, &popped] {
          int v = -1;
          while (popped < cfg.items) {
            if (!lane.try_pop(v)) {
              Sim::yield();
              continue;
            }
            check(v == popped, "lane pops FIFO, nothing lost or duplicated");
            ++popped;
          }
        },
    });

    check(popped == cfg.items, "consumer drained every item");
    check(lane.empty_approx(), "lane drained");
  });
}

Result check_handshake(const Options& opt) {
  return explore(opt, [](Sim& sim) {
    struct HsCmd {
      int op = 0;
      std::uint32_t req = ModelPool::kNil;
    };
    core::MpscRing<HsCmd, ModelAtomics> ring(2);
    ModelPool pool(2);
    atomic<int> doorbell{0};
    ModelAtomics::set_name(doorbell, "doorbell");
    // Published ONLY by the doorbell's release/acquire pair: the engine reads
    // it before popping the ring, so the ring's seq protocol cannot mask a
    // weakened doorbell.
    var<int> arg;
    ModelAtomics::set_name(arg, "hs.arg");

    sim.threads({
        // Application thread: alloc -> publish arg -> enqueue -> doorbell ->
        // wait for completion -> validate Status -> free.
        [&] {
          std::uint32_t idx = ModelPool::kNil;
          while ((idx = pool.alloc()) == ModelPool::kNil) Sim::yield();
          arg.ref_w() = 41;
          while (!ring.try_push(HsCmd{1, idx})) Sim::yield();
          doorbell.store(1, std::memory_order_release);
          while (!pool.done(idx)) Sim::yield();
          check(pool.status(idx).bytes == 42,
                "status payload round-tripped through the handshake");
          pool.free(idx);
        },
        // Engine thread: doorbell -> arg -> pop -> complete.
        [&] {
          while (doorbell.load(std::memory_order_acquire) == 0) Sim::yield();
          const int a = arg.ref_r();
          HsCmd c;
          while (!ring.try_pop(c)) Sim::yield();
          check(c.op == 1, "engine popped the issued command");
          smpi::Status st;
          st.bytes = static_cast<std::uint64_t>(a) + 1;
          pool.complete(c.req, st);
        },
    });

    check(pool.free_count() == 2, "request slot returned to the pool");
  });
}

Result check_cont(const Options& opt) {
  return explore(opt, [](Sim& sim) {
    core::ContTableT<ModelAtomics> table(1);
    // What each side publishes before its claim CAS. The callback reads
    // BOTH — so whichever side loses the race, a weakened edge on the
    // winner's publication is a detectable race on one of these cells.
    var<int> payload;  // completer: the Status/done-flag stand-in
    var<int> record;   // attacher: the callback record stand-in
    ModelAtomics::set_name(payload, "cont.payload");
    ModelAtomics::set_name(record, "cont.record");
    int executed = 0;  // only the single callback runner increments
    auto run_cb = [&] {
      check(record.ref_r() == 1, "callback record visible to the runner");
      check(payload.ref_r() == 42, "completion payload visible to the runner");
      ++executed;
    };

    sim.threads({
        // Completer (the offload engine): publish payload, then fire. A true
        // return means a continuation was already armed — run it.
        [&] {
          payload.ref_w() = 42;
          if (table.fire(0)) run_cb();
        },
        // Attacher (the application's .then()): publish the record, then
        // arm. A true return means the completion already fired — run
        // inline.
        [&] {
          record.ref_w() = 1;
          if (table.arm(0)) run_cb();
        },
    });

    check(executed == 1, "callback ran exactly once");
    check(table.state_of(0) != core::ContTableT<ModelAtomics>::kIdle,
          "slot is claimed by exactly one side after the race");
  });
}

Result check_whenany(const Options& opt, const WhenAnyCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::AnyClaimT<ModelAtomics> claim;
    const auto n = static_cast<std::size_t>(cfg.completers);
    // What each member publishes before its claim CAS — the Status record
    // stand-in. The winner's cell is read by every loser (through the failed
    // CAS's acquire) and by the observer (through winner()'s acquire), so a
    // weakened edge on any of the three orders is a detectable race here.
    std::vector<var<int>> record(n);
    for (std::size_t i = 0; i < n; ++i) {
      ModelAtomics::set_name(record[i], "any.record", i);
    }
    int winner_runs = 0;  // only the single claim winner increments

    std::vector<std::function<void()>> bodies;
    bodies.reserve(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      bodies.emplace_back([&claim, &record, &winner_runs, i] {
        record[i].ref_w() = static_cast<int>(i) + 100;
        std::uint32_t observed;
        if (claim.claim(static_cast<std::uint32_t>(i), observed)) {
          ++winner_runs;  // the win callback: reads its own publication
          check(record[i].ref_r() == static_cast<int>(i) + 100,
                "winner's own record visible in the win callback");
        } else {
          // Loser: the failed CAS observed the winner's index with acquire —
          // the ONLY edge making the winner's record safe to read here (the
          // hedging edge rank reads the winning response buffer like this).
          const auto w = static_cast<std::size_t>(observed);
          check(w < record.size(), "loser observes a decided winner");
          check(record[w].ref_r() == static_cast<int>(w) + 100,
                "winner's record visible to the loser");
        }
      });
    }
    // Observer: a third party (the settled hook / a draining fiber) that
    // learns the winner only through winner()'s acquire load.
    bodies.emplace_back([&claim, &record] {
      std::uint32_t w;
      while ((w = claim.winner()) == core::AnyClaimT<ModelAtomics>::kOpen) {
        Sim::yield();
      }
      check(record[w].ref_r() == static_cast<int>(w) + 100,
            "winner's record visible to a winner() observer");
    });
    sim.threads(std::move(bodies));

    check(winner_runs == 1, "exactly one member won the claim");
    const std::uint32_t w = claim.winner();
    check(w < n, "final winner index is a member");
    claim.reset();
    check(claim.winner() == core::AnyClaimT<ModelAtomics>::kOpen,
          "reset reopens the word for the next group");
  });
}

Result check_mring(const Options& opt, const MringCfg& cfg) {
  return explore(opt, [&cfg](Sim& sim) {
    core::MpscRing<RingCmd, ModelAtomics> ring(cfg.capacity);
    core::DrainClaimT<ModelAtomics> claim;
    const int total = cfg.producers * cfg.items_per_producer;
    // Consumer-side matching state — plain cells ON PURPOSE. The production
    // analogues are the engine's per-peer bookkeeping, the lanes' plain
    // cached_tail_, and the MPSC head's single-consumer protocol: all handed
    // between consumers ONLY by the claim's release/acquire pair. Weaken
    // either side and the race detector fires on these cells (or the ring
    // double-pops and the FIFO check fires).
    std::vector<var<int>> next_seq(static_cast<std::size_t>(cfg.producers));
    for (std::size_t p = 0; p < next_seq.size(); ++p) {
      ModelAtomics::set_name(next_seq[p], "mring.next", p);
    }
    var<int> drained;
    ModelAtomics::set_name(drained, "mring.drained");
    drained.ref_w() = 0;  // ordered before the threads by the spawn edge

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(cfg.producers + cfg.consumers));
    for (int p = 0; p < cfg.producers; ++p) {
      bodies.emplace_back([&ring, &cfg, p] {
        for (int s = 0; s < cfg.items_per_producer; ++s) {
          while (!ring.try_push(RingCmd{p, s})) Sim::yield();
        }
      });
    }
    for (int c = 0; c < cfg.consumers; ++c) {
      bodies.emplace_back([&ring, &claim, &next_seq, &drained, total] {
        for (;;) {
          if (!claim.try_claim()) {
            Sim::yield();  // owner or a sibling thief is on it
            continue;
          }
          // Claim held: we are THE consumer of record until release.
          if (drained.ref_r() == total) {
            claim.release();
            return;
          }
          RingCmd cmd;
          while (ring.try_pop(cmd)) {
            const auto p = static_cast<std::size_t>(cmd.producer);
            check(cmd.seqno == next_seq[p].ref_r(),
                  "per-producer FIFO survives the consumer handoff");
            next_seq[p].ref_w() = cmd.seqno + 1;
            drained.ref_w() = drained.ref_r() + 1;
            Sim::yield();  // hold the claim across an interleaving, as the
                           // engine holds it across the issue() yield
          }
          claim.release();
          Sim::yield();
        }
      });
    }
    sim.threads(std::move(bodies));

    check(drained.ref_r() == total, "every command popped exactly once");
    for (std::size_t p = 0; p < next_seq.size(); ++p) {
      check(next_seq[p].ref_r() == cfg.items_per_producer,
            "each producer's stream fully consumed in order");
    }
    check(ring.empty_approx(), "ring drained");
  });
}

Result check_doorbell(const Options& opt, bool buggy) {
  return explore(opt, [buggy](Sim& sim) {
    core::MpscRing<int, ModelAtomics> ring(2);
    atomic<std::uint64_t> doorbell{0};
    ModelAtomics::set_name(doorbell, "doorbell");
    // Engine-local sleep decision, read by the main body after join.
    bool slept = false;
    std::uint64_t armed = 0;

    sim.threads({
        // Producer: publish the command, THEN ring the doorbell — the
        // engine-side sleep protocol is sound only against this order.
        [&ring, &doorbell] {
          while (!ring.try_push(7)) Sim::yield();
          doorbell.store(1, std::memory_order_release);
        },
        // Engine at the sleep transition (its spin/yield polls all came up
        // empty); the two orderings under test differ only in which of
        // {snapshot doorbell, re-check queues} runs first.
        [&ring, &doorbell, &slept, &armed, buggy] {
          if (buggy) {
            // BUG (the lost-doorbell window): re-check the queues FIRST,
            // then snapshot the doorbell to arm the sleep. A command
            // published between the two is counted INSIDE the snapshot —
            // the engine sleeps waiting for a count the doorbell already
            // reached.
            const bool empty = ring.empty_approx();
            Sim::yield();  // the preemption window this ordering leaves open
            const std::uint64_t cur =
                doorbell.load(std::memory_order_acquire);
            if (empty) {
              slept = true;
              armed = cur;
            }
          } else {
            // FIX (the production ordering): snapshot FIRST, then re-check.
            // If the re-check missed a push, that push's signal necessarily
            // lands after the snapshot, so wait_beyond(armed) returns. And
            // if the snapshot saw the signal, the acquire edge makes the
            // push visible to the re-check — the engine cannot sleep at all.
            const std::uint64_t cur =
                doorbell.load(std::memory_order_acquire);
            Sim::yield();
            const bool empty = ring.empty_approx();
            if (empty) {
              slept = true;
              armed = cur;
            }
          }
        },
    });

    // Post-join invariant (the join stands in for wait_beyond returning):
    // sleeping while a command is pending is only sound if the doorbell's
    // final count exceeds the armed snapshot — otherwise the sleep never
    // wakes and the command is stranded.
    if (slept && !ring.empty_approx()) {
      check(doorbell.load(std::memory_order_acquire) > armed,
            "a pending command's signal lands beyond the armed snapshot");
    }
  });
}

Result check_pready(const Options& opt, const PreadyCfg& cfg) {
  return explore(opt, [cfg](Sim& sim) {
    const int n = cfg.publishers;
    core::PartReadyWordT<ModelAtomics> word;
    // One plain payload cell per partition: the compute fiber's slice of the
    // user buffer. Nothing orders these against the engine except the ready
    // word's release/acquire pair — weaken either side and the consumer
    // reads an unpublished slice.
    std::vector<var<int>> payload(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      ModelAtomics::set_name(payload[static_cast<std::size_t>(p)],
                             "pready.payload", static_cast<std::size_t>(p));
    }

    std::vector<std::function<void()>> bodies;
    for (int p = 0; p < n; ++p) {
      bodies.push_back([&, p] {
        payload[static_cast<std::size_t>(p)].ref_w() = 100 + p;
        const std::uint64_t old = word.mark(static_cast<unsigned>(p));
        check((old & (std::uint64_t{1} << p)) == 0,
              "mark() reports a fresh bit (no double pready)");
      });
    }
    // Engine consumer: poll the word, ship every newly-ready partition by
    // reading its payload (the NIC serializes straight from the user
    // buffer). `shipped` is the engine's plain mirror mask.
    bodies.push_back([&] {
      const std::uint64_t all = (std::uint64_t{1} << n) - 1;
      std::uint64_t shipped = 0;
      while (shipped != all) {
        const std::uint64_t ready = word.load();
        std::uint64_t fresh = ready & ~shipped;
        if (fresh == 0) {
          Sim::yield();
          continue;
        }
        for (int p = 0; p < n; ++p) {
          if ((fresh & (std::uint64_t{1} << p)) != 0) {
            check(payload[static_cast<std::size_t>(p)].ref_r() == 100 + p,
                  "partition payload visible when its ready bit is");
          }
        }
        shipped |= fresh;
      }
    });
    sim.threads(std::move(bodies));

    check(word.load() == (std::uint64_t{1} << n) - 1,
          "every partition marked exactly once");
    // Re-arm is quiescent by construction once all threads joined.
    word.reset();
    check(word.load() == 0, "reset clears the word for the next generation");
  });
}

Result run_spec(const std::string& spec, const Options& opt) {
  if (spec == "ring") return check_ring(opt);
  if (spec == "pool") return check_pool(opt);
  if (spec == "lane") return check_lane(opt);
  if (spec == "handshake") return check_handshake(opt);
  if (spec == "cont") return check_cont(opt);
  if (spec == "whenany") return check_whenany(opt);
  if (spec == "mring") return check_mring(opt);
  if (spec == "sleep") return check_doorbell(opt);
  if (spec == "pready") return check_pready(opt);
  throw std::invalid_argument("unknown spec: " + spec);
}

std::vector<MutationCase> mutation_matrix() {
  return {
      // MpscRing seq protocol (both producer and consumer sides share the
      // ring.seq base location; the ring spec catches either side).
      {{"ring.seq", OpKind::kLoad, Side::kAcquire}, "ring"},
      {{"ring.seq", OpKind::kStore, Side::kRelease}, "ring"},
      // SpscLane cached-index protocol: tail release/acquire publishes the
      // payload, head release/acquire returns cells for reuse (the lane spec
      // wraps around, so a weakened head edge races on the recycled cell).
      {{"lane.tail", OpKind::kLoad, Side::kAcquire}, "lane"},
      {{"lane.tail", OpKind::kStore, Side::kRelease}, "lane"},
      {{"lane.head", OpKind::kLoad, Side::kAcquire}, "lane"},
      {{"lane.head", OpKind::kStore, Side::kRelease}, "lane"},
      // RequestPool free-list handoff.
      {{"pool.head", OpKind::kLoad, Side::kAcquire}, "pool"},
      {{"pool.head", OpKind::kRmw, Side::kAcquire}, "pool"},
      {{"pool.head", OpKind::kRmw, Side::kRelease}, "pool"},
      // Completion publish and the doorbell edge: cross-thread only in the
      // handshake spec.
      {{"pool.done", OpKind::kLoad, Side::kAcquire}, "handshake"},
      {{"pool.done", OpKind::kStore, Side::kRelease}, "handshake"},
      {{"doorbell", OpKind::kLoad, Side::kAcquire}, "handshake"},
      {{"doorbell", OpKind::kStore, Side::kRelease}, "handshake"},
      // ContTable claim CAS: the release half of a successful claim
      // publishes that side's record; the acquire half of the FAILED claim
      // is what lets the loser read it before running the callback.
      {{"cont.state", OpKind::kRmw, Side::kAcquire}, "cont"},
      {{"cont.state", OpKind::kRmw, Side::kRelease}, "cont"},
      // AnyClaim first-wins word (when_any): the winning claim's release
      // publishes the winner's Status record; the losers' failure-acquire
      // and the observer's winner() load-acquire are the only edges that
      // make it safe to read. All three load-bearing.
      {{"any.winner", OpKind::kRmw, Side::kRelease}, "whenany"},
      {{"any.winner", OpKind::kRmw, Side::kAcquire}, "whenany"},
      {{"any.winner", OpKind::kLoad, Side::kAcquire}, "whenany"},
      // DrainClaim consumer handoff: the successful try_claim's acquire
      // joins the previous holder's release, carrying the queues'
      // consumer-side plain state between engines. Only the multi-consumer
      // spec exercises two holders, so only it can catch a weakening.
      {{"claim.state", OpKind::kRmw, Side::kAcquire}, "mring"},
      {{"claim.state", OpKind::kStore, Side::kRelease}, "mring"},
      // Partition-ready word: the publisher's fetch_or release publishes the
      // partition payload, the engine's acquire load reads it before the
      // NIC serializes the slice. The only ordering between compute fibers
      // and the engine for partitioned sends — both sides load-bearing.
      {{"pready.word", OpKind::kRmw, Side::kRelease}, "pready"},
      {{"pready.word", OpKind::kLoad, Side::kAcquire}, "pready"},
  };
}

std::vector<Site> collect_sites() {
  Options opt;
  opt.mode = Mode::kRandom;
  opt.iterations = 8;
  opt.seed = 12345;
  std::set<Site> all;
  for (const char* spec :
       {"ring", "pool", "lane", "handshake", "cont", "whenany", "mring",
        "sleep", "pready"}) {
    const Result r = run_spec(spec, opt);
    if (r.failed) {
      throw std::logic_error(std::string("collect_sites: spec '") + spec +
                             "' failed unmutated: " + r.message);
    }
    all.insert(r.sites.begin(), r.sites.end());
  }
  return {all.begin(), all.end()};
}

}  // namespace chk::specs
