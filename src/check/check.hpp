// Umbrella header for the model-checking harness.
//
//   #include "check/check.hpp"
//
//   chk::Options opt;                       // exhaustive DFS by default
//   auto r = chk::explore(opt, [](chk::Sim& sim) {
//     core::MpscRing<int, chk::ModelAtomics> ring(2);
//     sim.threads({ [&]{ while (!ring.try_push(1)) chk::Sim::yield(); },
//                   [&]{ int v; while (!ring.try_pop(v)) chk::Sim::yield(); } });
//   });
//   // r.failed => r.message, r.trace, r.failing_trail / r.failing_seed
//
// See specs.hpp for the ready-made MpscRing / RequestPool / handshake specs
// and the mutation matrix that proves each memory order is load-bearing.
#pragma once

#include "check/atomic.hpp"    // IWYU pragma: export
#include "check/checker.hpp"   // IWYU pragma: export
#include "check/clock.hpp"     // IWYU pragma: export
