// Checker specs for the lock-free offload protocols.
//
// Each spec constructs the *production* structure (instantiated with
// chk::ModelAtomics), runs a small number of model threads against it, and
// asserts the protocol invariants. They are used three ways:
//
//  * unmodified, they must pass — exhaustively for small bounds, and under
//    long fixed-seed random sweeps (tests/test_check_*.cpp);
//  * under a Mutation (one acquire/release side weakened to relaxed) they
//    must FAIL with a replayable trace — the mutation suite
//    (tests/test_check_mutations.cpp) runs every entry of mutation_matrix();
//  * from the examples/model_check CLI for interactive exploration/replay.
#pragma once

#include <string>
#include <vector>

#include "check/check.hpp"

namespace chk::specs {

/// MpscRing: N producers push FIFO streams, 1 consumer drains. Asserts
/// per-producer FIFO order, no lost or duplicated commands, and exercises
/// the full/empty edges (capacity < total items).
struct RingCfg {
  int producers = 2;
  int items_per_producer = 2;
  std::size_t capacity = 2;  ///< power of two
};
Result check_ring(const Options& opt, const RingCfg& cfg = {});

/// RequestPool: N threads repeatedly alloc -> mark ownership -> free.
/// Asserts slot exclusivity (via a chk::var ownership cell per slot; the
/// pool's own Status var is also race-checked inside alloc) and that no
/// slot is lost or duplicated (final free-list length == capacity).
struct PoolCfg {
  int threads = 2;
  int rounds = 2;
  std::uint32_t capacity = 2;
};
Result check_pool(const Options& opt, const PoolCfg& cfg = {});

/// SpscLane: 1 producer pushes a FIFO stream (first half singly, second half
/// through one try_push_n batch), 1 consumer drains. capacity < items forces
/// wraparound, so every cell is reused and the head release/acquire pair
/// (cell return) is load-bearing, not just the tail publish.
struct LaneCfg {
  int items = 4;
  std::size_t capacity = 2;  ///< power of two
};
Result check_lane(const Options& opt, const LaneCfg& cfg = {});

/// The engine handshake: app thread allocs a request, writes a plain
/// argument cell, pushes the command, rings a doorbell (release); the
/// engine thread waits on the doorbell (acquire), reads the argument
/// *before* popping the ring (so only the doorbell edge orders it),
/// completes the request through the pool. App spins on done() and checks
/// the Status payload round-tripped.
Result check_handshake(const Options& opt);

/// The continuation claim race: a completer publishes a payload cell then
/// fire()s; an attacher publishes a callback-record cell then arm()s. The
/// loser of the claim CAS runs a callback that reads BOTH cells, so the
/// spec asserts exactly-once execution and that each side's publication is
/// visible to the runner under every interleaving.
Result check_cont(const Options& opt);

/// Multi-consumer ring under the DrainClaim protocol (the multi-proxy
/// engine's work-stealing shape): N producers push FIFO streams into the
/// production MpscRing, and M consumers alternate as THE consumer by taking
/// the claim, holding it across pop + bookkeeping (as the engine holds it
/// across pop + issue). The per-producer sequence cells and the drained
/// tally are plain chk::vars handed between consumers only by the claim's
/// release/acquire pair — exactly the role it plays for the lanes' plain
/// cached_tail_ and the MPSC head's single-consumer protocol — so weakening
/// either side of the claim races immediately.
struct MringCfg {
  int producers = 2;
  int items_per_producer = 2;
  std::size_t capacity = 2;  ///< power of two, < total items (full/empty edges)
  int consumers = 2;
};
Result check_mring(const Options& opt, const MringCfg& cfg = {});

/// The engine's sleep transition (the lost-doorbell window): a producer
/// pushes then signals; the engine, with all polls empty, decides to sleep.
/// `buggy=false` models the production ordering — snapshot the doorbell,
/// THEN re-check the queues, sleep beyond the snapshot — and must hold under
/// every interleaving (a push missed by the re-check implies its signal
/// lands after the snapshot). `buggy=true` swaps the two steps,
/// re-introducing the window where a command pushed between re-check and
/// snapshot is counted inside the armed snapshot: the checker finds the
/// interleaving where the engine sleeps on a doorbell that already rang.
Result check_doorbell(const Options& opt, bool buggy = false);

/// The when_any first-wins race (core::AnyClaimT): N completer threads each
/// publish a Status record cell (their member's payload) and then claim()
/// the single winner word with their index. Exactly one claim must succeed;
/// every loser reads the winner's record through its failure-acquire, and an
/// observer thread that polls winner() (acquire) until the race is decided
/// reads the same record — the three orders (CAS release, CAS
/// failure-acquire, winner() load-acquire) are each the only edge ordering
/// one of those reads, so weakening any of them races immediately.
struct WhenAnyCfg {
  int completers = 2;
};
Result check_whenany(const Options& opt, const WhenAnyCfg& cfg = {});

/// The partition-ready word of a partitioned send (core/part_ready.hpp):
/// N publisher fibers each write a plain payload cell (their slice of the
/// user buffer) and then mark(p) their partition bit; the engine consumer
/// polls the word and, for every newly-observed bit, reads that partition's
/// payload — exactly what the offload engine does before handing the slice
/// to the NIC. The payload cells are plain chk::vars ordered ONLY by the
/// word's release/acquire pair, so weakening either side races immediately.
/// Also asserts mark() reports a prior double-mark via its return value.
struct PreadyCfg {
  int publishers = 2;
};
Result check_pready(const Options& opt, const PreadyCfg& cfg = {});

/// Run a spec by name ("ring" | "pool" | "lane" | "handshake" | "cont" |
/// "whenany" | "mring" | "sleep" | "pready") with its default cfg.
Result run_spec(const std::string& spec, const Options& opt);

/// One row of the mutation suite: weakening `site` must be caught by `spec`.
struct MutationCase {
  Site site;
  const char* spec;  ///< spec name for run_spec()
};

/// The curated site -> detecting-spec table. Covers every acquire/release
/// site the specs observe (test_check_mutations asserts this against
/// collect_sites(), so a new fence added to the production code cannot
/// silently dodge the suite).
std::vector<MutationCase> mutation_matrix();

/// Union of synchronization sites observed while running all specs briefly
/// (random mode, few iterations).
std::vector<Site> collect_sites();

}  // namespace chk::specs
