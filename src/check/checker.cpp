#include "check/checker.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace chk {

namespace {

thread_local Checker* g_current = nullptr;

constexpr std::size_t kFiberStack = 256 * 1024;

constexpr std::uint8_t kSiteLoadAcq = 1u << 0;
constexpr std::uint8_t kSiteStoreRel = 1u << 1;
constexpr std::uint8_t kSiteRmwAcq = 1u << 2;
constexpr std::uint8_t kSiteRmwRel = 1u << 3;

bool has_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}
bool has_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}
std::memory_order drop_acquire(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_acquire:
    case std::memory_order_consume:
      return std::memory_order_relaxed;
    case std::memory_order_acq_rel:
      return std::memory_order_release;
    case std::memory_order_seq_cst:
      return std::memory_order_release;
    default:
      return mo;
  }
}
std::memory_order drop_release(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_release:
      return std::memory_order_relaxed;
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_seq_cst:
      return std::memory_order_acquire;
    default:
      return mo;
  }
}

const char* order_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

}  // namespace

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
  }
  return "?";
}

const char* side_name(Side s) {
  switch (s) {
    case Side::kNone: return "none";
    case Side::kAcquire: return "acquire";
    case Side::kRelease: return "release";
  }
  return "?";
}

std::string Site::str() const {
  return loc + " " + op_kind_name(op) + " (" + side_name(side) + ")";
}

std::string Mutation::str() const {
  if (!active()) return "none";
  return loc + " " + op_kind_name(op) + " " + side_name(drop) + "->relaxed";
}

std::string Result::str() const {
  std::ostringstream os;
  os << (failed ? "FAILED" : "passed") << " after " << executions
     << " execution(s)";
  if (complete) os << " (state space exhausted)";
  if (failed) {
    os << ": " << message;
    if (!failing_trail.empty()) os << " [replay trail " << failing_trail << "]";
    if (failing_seed != 0) os << " [replay seed " << failing_seed << "]";
  }
  return os.str();
}

// ----------------------------------------------------------------- public ---

Checker::Checker(Options opt) : opt_(std::move(opt)) {}
Checker::~Checker() = default;

Checker* Checker::current() { return g_current; }

void Sim::threads(std::vector<std::function<void()>> bodies) {
  ck_->run_threads(std::move(bodies));
}

void Sim::yield() {
  Checker* ck = Checker::current();
  if (ck == nullptr) throw std::logic_error("chk::Sim::yield outside explore");
  ck->yield();
}

void check(bool cond, const char* msg) {
  if (cond) return;
  Checker* ck = Checker::current();
  if (ck == nullptr) throw std::logic_error(std::string("chk::check failed outside explore: ") + msg);
  ck->fail_here(std::string("assertion failed: ") + msg);
}

Result explore(const Options& opt, const std::function<void(Sim&)>& body) {
  Checker ck(opt);
  return ck.run(body);
}

Result Checker::run(const std::function<void(Sim&)>& body) {
  if (g_current != nullptr) {
    throw std::logic_error("nested chk::explore is not supported");
  }
  g_current = this;
  Result result;
  replay_ = !opt_.replay_trail.empty();
  if (replay_) {
    trail_.clear();
    std::size_t pos = 0;
    const std::string& s = opt_.replay_trail;
    while (pos < s.size()) {
      std::size_t next = s.find('.', pos);
      if (next == std::string::npos) next = s.size();
      trail_.push_back(Choice{-1, std::stoi(s.substr(pos, next - pos))});
      pos = next + 1;
    }
  }
  const std::uint64_t cap =
      replay_ ? 1
              : (opt_.mode == Mode::kExhaustive ? opt_.max_executions
                                                : opt_.iterations);
  try {
    for (exec_index_ = 0; exec_index_ < cap; ++exec_index_) {
      begin_execution(exec_index_);
      try {
        Sim sim(this);
        body(sim);
      } catch (detail::ExecutionAbort&) {
        // Failure already recorded; skip the rest of the body.
      }
      finish_execution();
      ++result.executions;
      if (failed_) {
        result.failed = true;
        result.message = message_;
        result.trace = format_trace();
        if (opt_.mode == Mode::kRandom) {
          result.failing_seed = opt_.seed + exec_index_;
        } else {
          std::string t;
          for (std::size_t i = 0; i < trail_.size(); ++i) {
            if (i > 0) t += '.';
            t += std::to_string(trail_[i].chosen);
          }
          result.failing_trail = t;
        }
        break;
      }
      if (replay_) {
        result.complete = true;
        break;
      }
      if (opt_.mode == Mode::kExhaustive && !advance_trail()) {
        result.complete = true;
        break;
      }
    }
  } catch (...) {
    g_current = nullptr;
    throw;
  }
  g_current = nullptr;
  result.sites.assign(sites_.begin(), sites_.end());
  return result;
}

// ------------------------------------------------------------- exploration ---

void Checker::begin_execution(std::uint64_t exec_index) {
  locs_.clear();
  threads_.clear();
  events_.clear();
  sc_clock_.clear();
  current_tid_ = 0;
  last_tid_ = -1;
  last_voluntary_ = false;
  preemptions_ = 0;
  steps_ = 0;
  progress_marker_ = 0;
  allyield_marker_ = ~0ull;
  failed_ = false;
  message_.clear();
  trail_pos_ = 0;
  in_threads_ = false;
  rng_.seed(opt_.seed + exec_index);
  // Thread 0 is the spec body itself (setup / postconditions).
  auto main_thread = std::make_unique<detail::ModelThread>();
  main_thread->tid = 0;
  main_thread->ck = this;
  threads_.push_back(std::move(main_thread));
}

void Checker::finish_execution() {
  for (const detail::Loc& l : locs_) {
    if (l.site_bits & kSiteLoadAcq) {
      sites_.insert(Site{l.base, OpKind::kLoad, Side::kAcquire});
    }
    if (l.site_bits & kSiteStoreRel) {
      sites_.insert(Site{l.base, OpKind::kStore, Side::kRelease});
    }
    if (l.site_bits & kSiteRmwAcq) {
      sites_.insert(Site{l.base, OpKind::kRmw, Side::kAcquire});
    }
    if (l.site_bits & kSiteRmwRel) {
      sites_.insert(Site{l.base, OpKind::kRmw, Side::kRelease});
    }
  }
}

bool Checker::advance_trail() {
  while (!trail_.empty() && trail_.back().chosen + 1 >= trail_.back().n) {
    trail_.pop_back();
  }
  if (trail_.empty()) return false;
  ++trail_.back().chosen;
  return true;
}

int Checker::choose(int n) {
  if (n <= 1) return 0;
  if (opt_.mode == Mode::kRandom && !replay_) {
    return static_cast<int>(rng_() % static_cast<std::uint64_t>(n));
  }
  if (trail_pos_ < trail_.size()) {
    Choice& c = trail_[trail_pos_++];
    if (c.n == -1) {
      c.n = n;  // replay trail: option counts are filled in as we go
    } else if (c.n != n) {
      throw std::logic_error(
          "chk internal error: nondeterministic spec body (choice-point "
          "option count changed on replay)");
    }
    if (c.chosen >= n) c.chosen = n - 1;
    return c.chosen;
  }
  trail_.push_back(Choice{n, 0});
  ++trail_pos_;
  return 0;
}

// ---------------------------------------------------------------- threads ---

void Checker::trampoline(unsigned int hi, unsigned int lo) {
  auto* t = reinterpret_cast<detail::ModelThread*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  Checker* ck = t->ck;
  try {
    t->body();
  } catch (detail::AbortThread&) {
    // Failure already recorded.
  } catch (const std::exception& e) {
    ck->record_failure(std::string("uncaught exception in model thread: ") +
                       e.what());
  } catch (...) {
    ck->record_failure("uncaught non-std exception in model thread");
  }
  t->done = true;
  ck->trace(detail::Ev::kDone, -1, 0, 0, std::memory_order_relaxed);
  swapcontext(&t->ctx, &ck->main_ctx_);
  // Never resumed.
}

void Checker::resume(int tid) {
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(tid)];
  current_tid_ = tid;
  t.yielded = false;
  last_voluntary_ = false;
  swapcontext(&main_ctx_, &t.ctx);
  current_tid_ = 0;
}

void Checker::schedule_suspend() {
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  swapcontext(&t.ctx, &main_ctx_);
}

void Checker::run_threads(std::vector<std::function<void()>> bodies) {
  if (in_threads_ || current_tid_ != 0) {
    throw std::logic_error("Sim::threads must be called once, from the body");
  }
  if (bodies.size() + 1 > static_cast<std::size_t>(kMaxThreads)) {
    throw std::logic_error("too many model threads");
  }
  in_threads_ = true;
  const VectorClock& main_clock = threads_[0]->clock;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    auto t = std::make_unique<detail::ModelThread>();
    t->tid = static_cast<int>(i + 1);
    t->ck = this;
    t->body = std::move(bodies[i]);
    t->clock = main_clock;  // spawn edge: child sees all setup writes
    if (!stack_pool_.empty()) {
      t->stack = std::move(stack_pool_.back());
      stack_pool_.pop_back();
    } else {
      // Uninitialized on purpose: make_unique would zero 256KB per thread
      // per execution, dominating exploration time.
      t->stack.reset(new char[kFiberStack]);
    }
    getcontext(&t->ctx);
    t->ctx.uc_stack.ss_sp = t->stack.get();
    t->ctx.uc_stack.ss_size = kFiberStack;
    t->ctx.uc_link = nullptr;
    const auto p = reinterpret_cast<std::uintptr_t>(t.get());
    makecontext(&t->ctx, reinterpret_cast<void (*)()>(&Checker::trampoline), 2,
                static_cast<unsigned int>(p >> 32),
                static_cast<unsigned int>(p & 0xffffffffu));
    trace(detail::Ev::kSpawn, -1, static_cast<std::uint64_t>(t->tid), 0,
          std::memory_order_relaxed);
    threads_.push_back(std::move(t));
  }

  while (!failed_) {
    std::vector<int> live;
    std::vector<int> ready;
    for (std::size_t i = 1; i < threads_.size(); ++i) {
      if (threads_[i]->done) continue;
      live.push_back(static_cast<int>(i));
      if (!threads_[i]->yielded) ready.push_back(static_cast<int>(i));
    }
    if (live.empty()) break;  // all threads finished
    if (ready.empty()) {
      // Every live thread is spin-waiting. If nothing changed since the last
      // time this happened (no store landed, no stale budget consumed), no
      // future schedule can make progress: livelock/deadlock.
      if (progress_marker_ == allyield_marker_) {
        record_failure(
            "livelock: every thread is spin-waiting and no store or legal "
            "stale-read choice can unblock any of them");
        break;
      }
      allyield_marker_ = progress_marker_;
      for (int tid : live) threads_[static_cast<std::size_t>(tid)]->yielded = false;
      ready = live;
    }
    // Preemption-bounded choice: continuing the last-run thread is free;
    // switching away from it while it is still runnable costs one preemption.
    bool cur_runnable = false;
    for (int tid : ready) cur_runnable |= (tid == last_tid_);
    std::vector<int> options;
    if (cur_runnable && !last_voluntary_) {
      options.push_back(last_tid_);
      if (opt_.mode != Mode::kExhaustive || preemptions_ < opt_.preemption_bound) {
        for (int tid : ready) {
          if (tid != last_tid_) options.push_back(tid);
        }
      }
    } else {
      options = ready;
    }
    const int chosen = options[static_cast<std::size_t>(choose(static_cast<int>(options.size())))];
    if (cur_runnable && !last_voluntary_ && chosen != last_tid_) ++preemptions_;
    if (chosen != last_tid_) {
      trace(detail::Ev::kSwitch, -1, static_cast<std::uint64_t>(chosen), 0,
            std::memory_order_relaxed);
    }
    resume(chosen);
    last_tid_ = chosen;
  }

  // Join edge: the body happens-after everything each thread did. Recycle
  // the fiber stacks (never resumed again, even the abandoned ones).
  for (std::size_t i = 1; i < threads_.size(); ++i) {
    threads_[0]->clock.join(threads_[i]->clock);
    if (threads_[i]->stack) stack_pool_.push_back(std::move(threads_[i]->stack));
  }
  if (failed_) throw detail::ExecutionAbort{};
}

void Checker::yield() {
  if (current_tid_ == 0) return;  // no-op outside model threads
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  t.yielded = true;
  last_voluntary_ = true;
  trace(detail::Ev::kYield, -1, 0, 0, std::memory_order_relaxed);
  schedule_suspend();
}

void Checker::record_failure(std::string msg) {
  if (!failed_) {
    failed_ = true;
    message_ = std::move(msg);
    trace(detail::Ev::kFail, -1, 0, 0, std::memory_order_relaxed);
  }
}

void Checker::fail_here(std::string msg) {
  record_failure(std::move(msg));
  if (current_tid_ != 0) throw detail::AbortThread{};
  throw detail::ExecutionAbort{};
}

void Checker::pre_op() {
  if (current_tid_ != 0) schedule_suspend();
  ++steps_;
  if (steps_ > opt_.max_steps) {
    fail_here("per-execution step budget exceeded (possible livelock)");
  }
}

// ----------------------------------------------------------- memory model ---

int Checker::register_loc(bool is_var, std::uint64_t initial) {
  detail::Loc l;
  l.is_var = is_var;
  if (!is_var) {
    detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
    detail::StoreElem e;
    e.value = initial;
    e.tid = current_tid_;
    e.when = t.clock.c[current_tid_];
    e.when_clock = t.clock;
    // The initial value is visible to every thread without synchronization,
    // like a constructor publish; msg carries the creator's clock so that
    // structures built during setup are race-free to use.
    e.msg = t.clock;
    l.hist.push_back(std::move(e));
  }
  locs_.push_back(std::move(l));
  return static_cast<int>(locs_.size() - 1);
}

void Checker::set_loc_name(int loc, const char* base, std::size_t idx,
                           bool indexed) {
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  l.base = base;
  l.idx = idx;
  l.indexed = indexed;
}

std::memory_order Checker::effective_order(const detail::Loc& l, OpKind op,
                                           std::memory_order req) const {
  const Mutation& m = opt_.mutation;
  if (!m.active() || m.op != op || m.loc != l.base) return req;
  return m.drop == Side::kAcquire ? drop_acquire(req) : drop_release(req);
}

void Checker::note_sites(detail::Loc& l, OpKind op, std::memory_order success,
                         std::memory_order failure) {
  switch (op) {
    case OpKind::kLoad:
      if (has_acquire(success)) l.site_bits |= kSiteLoadAcq;
      break;
    case OpKind::kStore:
      if (has_release(success)) l.site_bits |= kSiteStoreRel;
      break;
    case OpKind::kRmw:
      if (has_acquire(success) || has_acquire(failure)) l.site_bits |= kSiteRmwAcq;
      if (has_release(success)) l.site_bits |= kSiteRmwRel;
      break;
  }
}

int Checker::pick_load_index(detail::Loc& l, int tid, const VectorClock& c,
                             bool* stale) {
  *stale = false;
  const int top = static_cast<int>(l.hist.size()) - 1;
  // Visibility floor: a load may not return a store that is older (in
  // modification order) than some store that already happened-before it, nor
  // older than anything this thread previously read or wrote here.
  int floor = l.last_seen[tid];
  for (int i = top; i > floor; --i) {
    const detail::StoreElem& e = l.hist[static_cast<std::size_t>(i)];
    if (c.c[e.tid] >= e.when) {
      floor = i;
      break;
    }
  }
  int ncand = top - floor + 1;
  const int budget = opt_.stale_read_bound - l.stale_used[tid];
  ncand = std::min(ncand, 1 + std::max(0, budget));
  if (ncand <= 1) return top;
  const int k = choose(ncand);  // option 0 = newest, k>0 = k stores back
  if (k > 0) {
    ++l.stale_used[tid];
    ++progress_marker_;  // budgets deplete: spin loops still converge
    *stale = true;
  }
  return top - k;
}

std::uint64_t Checker::atomic_load(int loc, std::memory_order req) {
  pre_op();
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  note_sites(l, OpKind::kLoad, req, std::memory_order_relaxed);
  const std::memory_order mo = effective_order(l, OpKind::kLoad, req);
  if (mo == std::memory_order_seq_cst) t.clock.join(sc_clock_);
  bool stale = false;
  const int i = pick_load_index(l, current_tid_, t.clock, &stale);
  const detail::StoreElem& e = l.hist[static_cast<std::size_t>(i)];
  l.last_seen[current_tid_] = std::max(l.last_seen[current_tid_], i);
  if (has_acquire(mo)) t.clock.join(e.msg);
  if (mo == std::memory_order_seq_cst) sc_clock_.join(t.clock);
  trace(stale ? detail::Ev::kLoadStale : detail::Ev::kLoad, loc, e.value,
        static_cast<std::uint64_t>(static_cast<int>(l.hist.size()) - 1 - i), mo);
  return e.value;
}

void Checker::atomic_store(int loc, std::uint64_t v, std::memory_order req) {
  pre_op();
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  note_sites(l, OpKind::kStore, req, std::memory_order_relaxed);
  const std::memory_order mo = effective_order(l, OpKind::kStore, req);
  if (mo == std::memory_order_seq_cst) t.clock.join(sc_clock_);
  detail::StoreElem e;
  e.value = v;
  e.tid = current_tid_;
  e.when = t.clock.c[current_tid_];
  e.when_clock = t.clock;
  if (has_release(mo)) e.msg = t.clock;
  l.hist.push_back(std::move(e));
  l.last_seen[current_tid_] = static_cast<int>(l.hist.size()) - 1;
  if (mo == std::memory_order_seq_cst) sc_clock_.join(t.clock);
  ++progress_marker_;
  trace(detail::Ev::kStore, loc, v, 0, mo);
}

bool Checker::atomic_cas(int loc, std::uint64_t& expected,
                         std::uint64_t desired, std::memory_order success,
                         std::memory_order failure) {
  pre_op();
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  note_sites(l, OpKind::kRmw, success, failure);
  const std::memory_order mo_s = effective_order(l, OpKind::kRmw, success);
  std::memory_order mo_f = failure;
  if (opt_.mutation.active() && opt_.mutation.op == OpKind::kRmw &&
      opt_.mutation.loc == l.base && opt_.mutation.drop == Side::kAcquire) {
    mo_f = drop_acquire(mo_f);
  }
  if (mo_s == std::memory_order_seq_cst) t.clock.join(sc_clock_);
  // An RMW always reads the newest store in modification order; a failed
  // CAS is modeled the same way (no stale failures — see DESIGN.md §9).
  const detail::StoreElem& top = l.hist.back();
  l.last_seen[current_tid_] = static_cast<int>(l.hist.size()) - 1;
  if (top.value != expected) {
    expected = top.value;
    if (has_acquire(mo_f)) t.clock.join(top.msg);
    trace(detail::Ev::kCasFail, loc, top.value, desired, mo_f);
    return false;
  }
  if (has_acquire(mo_s)) t.clock.join(top.msg);
  detail::StoreElem e;
  e.value = desired;
  e.tid = current_tid_;
  e.when = t.clock.c[current_tid_];
  e.when_clock = t.clock;
  e.msg = top.msg;  // RMWs continue the release sequence (C++20 [intro.races])
  if (has_release(mo_s)) e.msg.join(t.clock);
  l.hist.push_back(std::move(e));
  l.last_seen[current_tid_] = static_cast<int>(l.hist.size()) - 1;
  if (mo_s == std::memory_order_seq_cst) sc_clock_.join(t.clock);
  ++progress_marker_;
  trace(detail::Ev::kCasOk, loc, desired, 0, mo_s);
  return true;
}

std::uint64_t Checker::atomic_fetch_add(int loc, std::uint64_t delta,
                                        std::memory_order req) {
  pre_op();
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  note_sites(l, OpKind::kRmw, req, std::memory_order_relaxed);
  const std::memory_order mo = effective_order(l, OpKind::kRmw, req);
  if (mo == std::memory_order_seq_cst) t.clock.join(sc_clock_);
  const detail::StoreElem& top = l.hist.back();
  const std::uint64_t old = top.value;
  if (has_acquire(mo)) t.clock.join(top.msg);
  detail::StoreElem e;
  e.value = old + delta;
  e.tid = current_tid_;
  e.when = t.clock.c[current_tid_];
  e.when_clock = t.clock;
  e.msg = top.msg;
  if (has_release(mo)) e.msg.join(t.clock);
  l.hist.push_back(std::move(e));
  l.last_seen[current_tid_] = static_cast<int>(l.hist.size()) - 1;
  if (mo == std::memory_order_seq_cst) sc_clock_.join(t.clock);
  ++progress_marker_;
  trace(detail::Ev::kRmw, loc, old + delta, old, mo);
  return old;
}

std::uint64_t Checker::atomic_fetch_or(int loc, std::uint64_t bits,
                                       std::memory_order req) {
  pre_op();
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  note_sites(l, OpKind::kRmw, req, std::memory_order_relaxed);
  const std::memory_order mo = effective_order(l, OpKind::kRmw, req);
  if (mo == std::memory_order_seq_cst) t.clock.join(sc_clock_);
  const detail::StoreElem& top = l.hist.back();
  const std::uint64_t old = top.value;
  if (has_acquire(mo)) t.clock.join(top.msg);
  detail::StoreElem e;
  e.value = old | bits;
  e.tid = current_tid_;
  e.when = t.clock.c[current_tid_];
  e.when_clock = t.clock;
  e.msg = top.msg;
  if (has_release(mo)) e.msg.join(t.clock);
  l.hist.push_back(std::move(e));
  l.last_seen[current_tid_] = static_cast<int>(l.hist.size()) - 1;
  if (mo == std::memory_order_seq_cst) sc_clock_.join(t.clock);
  ++progress_marker_;
  trace(detail::Ev::kRmw, loc, old | bits, old, mo);
  return old;
}

void Checker::var_write(int loc) {
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  ++steps_;
  const std::uint64_t step = steps_;
  trace(detail::Ev::kVarWrite, loc, 0, 0, std::memory_order_relaxed);
  if (l.w_tid >= 0 && l.w_tid != current_tid_ &&
      t.clock.c[l.w_tid] < l.w_when) {
    fail_here("data race on " + l.name() + ": write by T" +
              std::to_string(current_tid_) + " (step " + std::to_string(step) +
              ") is concurrent with write by T" + std::to_string(l.w_tid) +
              " (step " + std::to_string(l.w_step) + ")");
  }
  for (int r = 0; r < kMaxThreads; ++r) {
    if (r == current_tid_ || l.r_when[static_cast<std::size_t>(r)] == 0) continue;
    if (t.clock.c[r] < l.r_when[static_cast<std::size_t>(r)]) {
      fail_here("data race on " + l.name() + ": write by T" +
                std::to_string(current_tid_) + " (step " + std::to_string(step) +
                ") is concurrent with read by T" + std::to_string(r) +
                " (step " + std::to_string(l.r_step[static_cast<std::size_t>(r)]) +
                ")");
    }
  }
  l.w_tid = current_tid_;
  l.w_when = t.clock.c[current_tid_];
  l.w_step = step;
  l.r_when.fill(0);  // earlier reads are now ordered before this write
}

void Checker::var_read(int loc) {
  detail::Loc& l = locs_[static_cast<std::size_t>(loc)];
  detail::ModelThread& t = *threads_[static_cast<std::size_t>(current_tid_)];
  ++t.clock.c[current_tid_];
  ++steps_;
  const std::uint64_t step = steps_;
  trace(detail::Ev::kVarRead, loc, 0, 0, std::memory_order_relaxed);
  if (l.w_tid >= 0 && l.w_tid != current_tid_ &&
      t.clock.c[l.w_tid] < l.w_when) {
    fail_here("data race on " + l.name() + ": read by T" +
              std::to_string(current_tid_) + " (step " + std::to_string(step) +
              ") is concurrent with write by T" + std::to_string(l.w_tid) +
              " (step " + std::to_string(l.w_step) + ")");
  }
  l.r_when[static_cast<std::size_t>(current_tid_)] = t.clock.c[current_tid_];
  l.r_step[static_cast<std::size_t>(current_tid_)] = steps_;
}

// ------------------------------------------------------------------ trace ---

void Checker::trace(detail::Ev ev, int loc, std::uint64_t value,
                    std::uint64_t aux, std::memory_order mo) {
  if (events_.size() >= opt_.max_steps + 64) return;
  detail::TraceEvent e;
  e.step = static_cast<std::uint32_t>(steps_);
  e.tid = static_cast<std::int8_t>(current_tid_);
  e.ev = ev;
  e.loc = loc;
  e.value = value;
  e.aux = aux;
  e.order = static_cast<std::uint8_t>(mo);
  events_.push_back(e);
}

std::string Checker::format_trace() const {
  std::ostringstream os;
  for (const detail::TraceEvent& e : events_) {
    const auto mo = static_cast<std::memory_order>(e.order);
    const std::string loc_name =
        e.loc >= 0 ? locs_[static_cast<std::size_t>(e.loc)].name() : "";
    os << "  ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%5u T%d  ", e.step, static_cast<int>(e.tid));
    os << buf;
    switch (e.ev) {
      case detail::Ev::kLoad:
        os << "load  " << loc_name << " -> " << e.value << " (" << order_name(mo) << ")";
        break;
      case detail::Ev::kLoadStale:
        os << "load  " << loc_name << " -> " << e.value << " (" << order_name(mo)
           << ", STALE: " << e.aux << " store(s) behind)";
        break;
      case detail::Ev::kStore:
        os << "store " << loc_name << " = " << e.value << " (" << order_name(mo) << ")";
        break;
      case detail::Ev::kCasOk:
        os << "cas   " << loc_name << " = " << e.value << " OK (" << order_name(mo) << ")";
        break;
      case detail::Ev::kCasFail:
        os << "cas   " << loc_name << " failed, saw " << e.value << " (" << order_name(mo) << ")";
        break;
      case detail::Ev::kRmw:
        os << "rmw   " << loc_name << " " << e.aux << " -> " << e.value
           << " (" << order_name(mo) << ")";
        break;
      case detail::Ev::kVarRead:
        os << "read  " << loc_name << " (plain)";
        break;
      case detail::Ev::kVarWrite:
        os << "write " << loc_name << " (plain)";
        break;
      case detail::Ev::kYield:
        os << "yield (spin-wait)";
        break;
      case detail::Ev::kSwitch:
        os << "---- scheduler: switch to T" << e.value << " ----";
        break;
      case detail::Ev::kSpawn:
        os << "spawn T" << e.value;
        break;
      case detail::Ev::kDone:
        os << "thread done";
        break;
      case detail::Ev::kFail:
        os << "FAILURE DETECTED HERE";
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace chk
