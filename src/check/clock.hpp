// Vector clocks for the model checker's happens-before machinery.
//
// One component per model thread (thread 0 is the setup/teardown context
// that runs the spec body outside of Sim::threads()). Clocks are tiny fixed
// arrays: the checker targets 2-4 threads, where exhaustive exploration is
// tractable, so kMaxThreads stays deliberately small.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace chk {

inline constexpr int kMaxThreads = 8;

struct VectorClock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const VectorClock& o) {
    for (int i = 0; i < kMaxThreads; ++i) c[i] = std::max(c[i], o.c[i]);
  }

  /// Pointwise <=: "everything I know, o also knows".
  [[nodiscard]] bool leq(const VectorClock& o) const {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (c[i] > o.c[i]) return false;
    }
    return true;
  }

  void clear() { c.fill(0); }

  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (int i = 0; i < kMaxThreads; ++i) {
      if (i > 0) s += ',';
      s += std::to_string(c[i]);
    }
    s += ']';
    return s;
  }
};

}  // namespace chk
