// Vector clocks and shadow state for the fiber-aware race detector.
//
// Same FastTrack-style machinery as the model checker's chk::VectorClock
// (src/check/clock.hpp), but dynamic-width: the checker bounds itself to 8
// model threads, while a cluster run spawns one actor per fiber plus the
// scheduler, with no a-priori bound. Components are indexed by *actor id*:
// actor 0 is the scheduler context (fn-events, network delivery), actor
// f.id()+1 is fiber f.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace san {

class VClock {
 public:
  void ensure(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }
  [[nodiscard]] std::uint32_t at(std::size_t i) const {
    return i < c_.size() ? c_[i] : 0;
  }
  void set(std::size_t i, std::uint32_t v) {
    ensure(i + 1);
    c_[i] = v;
  }
  void tick(std::size_t i) {
    ensure(i + 1);
    ++c_[i];
  }
  void join(const VClock& o) {
    ensure(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }
  void clear() { c_.clear(); }
  [[nodiscard]] bool empty() const { return c_.empty(); }

  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i > 0) s += ',';
      s += std::to_string(c_[i]);
    }
    s += ']';
    return s;
  }

 private:
  std::vector<std::uint32_t> c_;
};

/// FastTrack epoch: one access, as (actor, actor's clock at the access).
/// Epoch e happens-before actor a's current point iff e.clock <= C_a[e.actor]
/// — clocks start at 1 on fork, so clock 0 means "no such access yet".
struct Epoch {
  std::uint32_t actor = 0;
  std::uint32_t clock = 0;
  [[nodiscard]] bool valid() const { return clock != 0; }
  [[nodiscard]] bool before(const VClock& c) const {
    return clock <= c.at(actor);
  }
};

/// One recorded access: the epoch plus enough context to print both sides of
/// a race (annotation site, fiber name, virtual timestamp).
struct Access {
  Epoch epoch;
  const char* site = "";     ///< annotation-site literal (static storage)
  std::string actor_name;    ///< fiber/scheduler name at access time
  std::int64_t time_ns = 0;  ///< virtual time at access
};

/// Shadow state for one annotated variable. Writes keep the single last
/// write; reads keep one access per actor since that write (a read "vector"),
/// so a write racing ANY concurrent reader is caught, not just the latest.
struct ShadowVar {
  Access last_write;
  std::vector<Access> reads;  ///< at most one entry per actor
};

}  // namespace san
