#include "san/san.hpp"

#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "san/vclock.hpp"
#include "trace/tracer.hpp"
#include "util/spec_parser.hpp"

namespace san {

namespace {

/// Inflight buffer registration (one per rendezvous send / pending recv).
struct Reg {
  int rank = 0;
  int req = 0;
  const std::byte* lo = nullptr;
  const std::byte* hi = nullptr;  ///< one past the end
  bool write = false;             ///< true for recv targets (wire writes them)
  bool has_sum = false;
  std::uint64_t sum = 0;

  [[nodiscard]] bool overlaps(const void* p, std::size_t n) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b < hi && b + n > lo;
  }
  [[nodiscard]] const char* dir() const { return write ? "recv" : "send"; }
};

/// Per-communicator-context collective posting log: the first rank to post
/// collective #i on a context defines the expected (kind, root); every other
/// rank's #i post must match.
struct CollLog {
  struct Entry {
    int kind = 0;
    int root = -1;
    std::string name;
  };
  std::vector<Entry> order;
  std::map<int, std::size_t> cursor;  ///< rank -> next posting index
};

struct State {
  Options opt;
  int depth = 0;

  // --- reporter ---
  std::vector<Report> reps;
  std::set<std::string> seen_messages;
  Stats stats;

  // --- race detector: actor context ---
  std::uint64_t cur = 0;  ///< current actor (0 = scheduler context)
  std::int64_t now_ns = 0;
  std::uint32_t sched_tick = 0;  ///< keeps actor 0's own component monotone
  std::vector<std::string> names;
  std::vector<VClock> clocks;
  std::map<std::uint64_t, VClock> pending;    ///< wake edges awaiting switch-in
  std::map<std::uint64_t, VClock> snapshots;  ///< fn-event seq -> poster clock
  std::map<std::pair<const void*, std::uint64_t>, VClock> sync;
  std::map<const void*, std::deque<VClock>> chans;
  std::map<const void*, ShadowVar> shadow;

  // --- usage lint ---
  std::map<std::uint64_t, Reg> regs;  ///< (rank<<32|req) -> registration
  std::map<std::uint32_t, CollLog> colls;
};

// Session state lives for the whole process: reports/stats stay readable
// after end_session(); the next begin_session() resets them.
State& st() {
  static State s;
  return s;
}

std::uint64_t reg_key(int rank, int req) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32U) |
         static_cast<std::uint32_t>(req);
}

std::uint64_t fnv1a(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(b[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void raise(const char* kind, std::string msg) {
  State& s = st();
  if (!s.seen_messages.insert(msg).second) return;  // dedupe repeats
  ++s.stats.reports;
  if (s.reps.size() < s.opt.max_reports) {
    s.reps.push_back(Report{kind, msg});
  }
  std::fprintf(stderr, "[san] %s: %s\n", kind, msg.c_str());
  if (trace::Tracer::on()) {
    trace::Tracer::instance().instant(s.now_ns, /*pid=*/-1, trace::kHwTid,
                                      std::string("san:") + kind, "san");
  }
  if (s.opt.fail) throw Error(std::string(kind) + ": " + msg);
}

void ensure_actor(std::uint64_t a) {
  State& s = st();
  if (s.clocks.size() <= a) {
    s.clocks.resize(a + 1);
    s.names.resize(a + 1);
  }
  if (s.clocks[a].at(a) == 0) s.clocks[a].set(a, 1);
}

VClock& clock_of(std::uint64_t a) {
  ensure_actor(a);
  return st().clocks[a];
}

std::string actor_label(std::uint64_t a) {
  const State& s = st();
  const std::string& n = a < s.names.size() ? s.names[a] : std::string();
  if (!n.empty()) return "'" + n + "'";
  return a == 0 ? "'scheduler'" : "actor " + std::to_string(a);
}

std::string access_label(const Access& acc, bool write) {
  return std::string(write ? "write" : "read") + " by " +
         (acc.actor_name.empty() ? actor_label(acc.epoch.actor)
                                 : "'" + acc.actor_name + "'") +
         " at " + std::to_string(acc.time_ns) + "ns";
}

void report_race(const char* site, const Access& prev, bool prev_write,
                 const Access& now, bool now_write) {
  raise("race", std::string("race on ") + site + ": " +
                    access_label(prev, prev_write) + " vs " +
                    access_label(now, now_write) +
                    " (no happens-before edge between them)");
}

/// Overlap scan for the usage lint; returns the first (deterministic:
/// std::map order) inflight registration intersecting [p, p+n). `rank` scopes
/// the scan to one rank's registrations — ranks model separate address
/// spaces, so identical pointers across ranks are not real sharing (pass -1
/// to scan every rank, for annotations that carry no rank context).
const Reg* find_overlap(int rank, const void* p, std::size_t n,
                        bool writes_needed) {
  if (n == 0) return nullptr;
  for (const auto& [k, reg] : st().regs) {
    if (rank >= 0 && reg.rank != rank) continue;
    if (writes_needed && !reg.write) continue;
    if (reg.overlaps(p, n)) return &reg;
  }
  return nullptr;
}

std::string reg_str(const Reg& reg) {
  return std::string(reg.dir()) + " request #" + std::to_string(reg.req) +
         " of rank " + std::to_string(reg.rank) + " (" +
         std::to_string(reg.hi - reg.lo) + " bytes inflight)";
}

}  // namespace

// --------------------------------------------------------------- options ----

Options Options::parse(const std::string& spec) {
  Options o;
  if (spec.empty() || spec == "0") return o;
  // The leading bare token is the master switch — everything after the first
  // comma is an ordinary key:value spec handled by the shared grammar engine.
  const std::size_t head_end = spec.find(',');
  const std::string head = spec.substr(0, head_end);
  if (head != "0" && head != "1") {
    throw std::invalid_argument(
        "MPIOFF_SAN: spec must start with '1' (on) or '0' (off), got '" +
        spec + "'");
  }
  const std::string rest =
      head_end == std::string::npos ? std::string() : spec.substr(head_end + 1);
  if (head == "0") {
    if (!rest.empty()) {
      throw std::invalid_argument(
          "MPIOFF_SAN: '0' disables the sanitizer and takes no keys");
    }
    return o;
  }
  o.enabled = true;
  util::SpecParser grammar("MPIOFF_SAN", ":",
                           "race, usage, fail, max_reports");
  grammar.key("race").key("usage").key("fail").key("max_reports");
  for (const util::SpecItem& it : grammar.parse(rest)) {
    if (it.key == "race") {
      o.race = util::SpecParser::parse_bool("MPIOFF_SAN", it.value, it.key);
    } else if (it.key == "usage") {
      o.usage = util::SpecParser::parse_bool("MPIOFF_SAN", it.value, it.key);
    } else if (it.key == "fail") {
      o.fail = util::SpecParser::parse_bool("MPIOFF_SAN", it.value, it.key);
    } else if (it.key == "max_reports") {
      std::size_t n = 0;
      try {
        n = util::SpecParser::parse_count("MPIOFF_SAN", it.value, it.key);
      } catch (const std::invalid_argument&) {
        n = 0;
      }
      if (n == 0) {
        throw std::invalid_argument(
            "MPIOFF_SAN: max_reports takes a positive integer, got '" +
            it.value + "'");
      }
      o.max_reports = n;
    }
  }
  return o;
}

// --------------------------------------------------------------- session ----

#ifndef MPIOFFLOAD_NO_SAN

namespace detail {
bool g_on = false;
bool g_race = false;
bool g_usage = false;
}  // namespace detail

bool begin_session(const Options& o) {
  State& s = st();
  if (s.depth > 0) {  // nested cluster: join the outer session
    ++s.depth;
    return true;
  }
  if (!o.enabled) return false;
  s = State{};
  s.opt = o;
  s.depth = 1;
  s.names.resize(1);
  s.names[0] = "scheduler";
  ensure_actor(0);
  detail::g_on = true;
  detail::g_race = o.race;
  detail::g_usage = o.usage;
  return true;
}

bool begin_session(const std::string& spec) {
  return begin_session(Options::parse(spec));
}

void end_session() {
  State& s = st();
  if (s.depth == 0) return;
  if (--s.depth > 0) return;
  detail::g_on = false;
  detail::g_race = false;
  detail::g_usage = false;
  // Reports, stats and shadow stay readable until the next begin_session().
}

const std::vector<Report>& reports() { return st().reps; }

std::size_t count(const char* kind) {
  std::size_t n = 0;
  for (const Report& r : st().reps) {
    if (r.kind == kind) ++n;
  }
  return n;
}

const Stats& stats() { return st().stats; }

std::string engine_block_message(const char* what) {
  std::string msg =
      std::string("blocking wait in offload-engine context (") + what +
      "): continuations must not block the offload engine "
      "(attach another continuation instead)";
  if (detail::g_usage) raise("engine-block", msg);
  return msg;
}

// ------------------------------------------------- race-detector slow path ----

namespace detail {

void on_switch_slow(std::uint64_t actor, const char* name, std::int64_t ns) {
  State& s = st();
  s.cur = actor;
  s.now_ns = ns;
  ensure_actor(actor);
  if (name != nullptr && s.names[actor].empty()) s.names[actor] = name;
  if (const auto it = s.pending.find(actor); it != s.pending.end()) {
    s.clocks[actor].join(it->second);
    s.pending.erase(it);
    ++s.stats.sync_edges;
  }
}

void on_fork_slow(std::uint64_t child, const char* name) {
  State& s = st();
  VClock c = clock_of(s.cur);
  c.set(child, c.at(child) + 1);
  ensure_actor(child);
  s.clocks[child] = std::move(c);
  if (name != nullptr) s.names[child] = name;
  clock_of(s.cur).tick(s.cur);
  ++s.stats.sync_edges;
}

void on_wake_slow(std::uint64_t target) {
  State& s = st();
  s.pending[target].join(clock_of(s.cur));
  clock_of(s.cur).tick(s.cur);
  ++s.stats.sync_edges;
}

void event_post_slow(std::uint64_t seq) {
  State& s = st();
  s.snapshots[seq] = clock_of(s.cur);
  clock_of(s.cur).tick(s.cur);
  ++s.stats.sync_edges;
}

void event_fire_slow(std::uint64_t seq, std::int64_t ns) {
  State& s = st();
  s.cur = 0;
  s.now_ns = ns;
  ensure_actor(0);
  // The scheduler ADOPTS the posting snapshot instead of joining it: an
  // event chain (post -> fire -> post -> ...) carries exactly its own causal
  // history, so the scheduler never becomes a sink that transitively orders
  // every fiber with every other. Its own component stays monotone via a
  // dedicated tick so scheduler-context epochs remain well-ordered.
  if (const auto it = s.snapshots.find(seq); it != s.snapshots.end()) {
    s.clocks[0] = std::move(it->second);
    s.snapshots.erase(it);
  }
  s.clocks[0].set(0, ++s.sched_tick);
  ++s.stats.sync_edges;
}

void acquire_slow(const void* obj, std::uint64_t sub) {
  State& s = st();
  if (const auto it = s.sync.find({obj, sub}); it != s.sync.end()) {
    clock_of(s.cur).join(it->second);
  }
  ++s.stats.sync_edges;
}

void release_slow(const void* obj, std::uint64_t sub) {
  State& s = st();
  s.sync[{obj, sub}].join(clock_of(s.cur));
  clock_of(s.cur).tick(s.cur);
  ++s.stats.sync_edges;
}

void channel_push_slow(const void* chan, std::uint64_t n) {
  State& s = st();
  auto& q = s.chans[chan];
  for (std::uint64_t i = 0; i < n; ++i) q.push_back(clock_of(s.cur));
  clock_of(s.cur).tick(s.cur);
  ++s.stats.sync_edges;
}

void channel_pop_slow(const void* chan) {
  State& s = st();
  auto& q = s.chans[chan];
  if (!q.empty()) {
    clock_of(s.cur).join(q.front());
    q.pop_front();
  }
  ++s.stats.sync_edges;
}

void access_slow(const void* p, std::size_t n, bool write, const char* site) {
  State& s = st();
  if (g_race) {
    ++s.stats.race_checks;
    VClock& c = clock_of(s.cur);
    ShadowVar& v = s.shadow[p];
    const Access now_acc{Epoch{static_cast<std::uint32_t>(s.cur),
                               c.at(s.cur)},
                         site, s.cur < s.names.size() ? s.names[s.cur] : "",
                         s.now_ns};
    if (write) {
      if (v.last_write.epoch.valid() && !v.last_write.epoch.before(c)) {
        report_race(site, v.last_write, true, now_acc, true);
      } else {
        for (const Access& r : v.reads) {
          if (!r.epoch.before(c)) {
            report_race(site, r, false, now_acc, true);
            break;
          }
        }
      }
      v.reads.clear();
      v.last_write = now_acc;
    } else {
      if (v.last_write.epoch.valid() && !v.last_write.epoch.before(c)) {
        report_race(site, v.last_write, true, now_acc, false);
      }
      bool replaced = false;
      for (Access& r : v.reads) {
        if (r.epoch.actor == now_acc.epoch.actor) {
          r = now_acc;
          replaced = true;
          break;
        }
      }
      if (!replaced) v.reads.push_back(now_acc);
    }
  }
  if (g_usage) {
    // An annotated WRITE may not touch any inflight buffer; an annotated
    // READ may not touch an inflight recv target (inflight send buffers are
    // legal to read).
    if (const Reg* reg = find_overlap(-1, p, n, /*writes_needed=*/!write)) {
      if (write) {
        raise("write-inflight",
              std::string("annotated write at ") + site + " (" +
                  std::to_string(n) + " bytes) overlaps the buffer of " +
                  reg_str(*reg));
      } else {
        raise("read-inflight-recv",
              std::string("annotated read at ") + site + " (" +
                  std::to_string(n) +
                  " bytes) overlaps the not-yet-complete target of " +
                  reg_str(*reg));
      }
    }
  }
}

// ------------------------------------------------------ usage-lint slow path ----

void post_send_slow(int rank, int req, const void* buf, std::size_t n) {
  if (buf == nullptr || n == 0) return;  // phantom transfer: timing only
  State& s = st();
  // A new send range may not intersect any of THIS rank's inflight recv
  // targets (the wire will scribble into it); send-over-send is legal (both
  // only read).
  if (const Reg* other = find_overlap(rank, buf, n, /*writes_needed=*/true)) {
    raise("overlap", "rank " + std::to_string(rank) + " posted send request #" +
                         std::to_string(req) + " (" + std::to_string(n) +
                         " bytes) overlapping " + reg_str(*other));
  }
  Reg r;
  r.rank = rank;
  r.req = req;
  r.lo = static_cast<const std::byte*>(buf);
  r.hi = r.lo + n;
  r.write = false;
  r.has_sum = true;
  r.sum = fnv1a(buf, n);
  s.regs[reg_key(rank, req)] = r;
  ++s.stats.buffer_regs;
  ++s.stats.checksums;
}

void post_recv_slow(int rank, int req, const void* buf, std::size_t n) {
  if (buf == nullptr || n == 0) return;  // phantom transfer: timing only
  State& s = st();
  // A recv target may not intersect ANY of this rank's inflight
  // registrations: two pending recvs into one range race on the wire, and
  // recv-over-send corrupts the send's stable bytes.
  if (const Reg* other = find_overlap(rank, buf, n, /*writes_needed=*/false)) {
    raise("overlap", "rank " + std::to_string(rank) + " posted recv request #" +
                         std::to_string(req) + " (" + std::to_string(n) +
                         " bytes) overlapping " + reg_str(*other));
  }
  Reg r;
  r.rank = rank;
  r.req = req;
  r.lo = static_cast<const std::byte*>(buf);
  r.hi = r.lo + n;
  r.write = true;
  s.regs[reg_key(rank, req)] = r;
  ++s.stats.buffer_regs;
}

void complete_slow(int rank, int req) {
  State& s = st();
  const auto it = s.regs.find(reg_key(rank, req));
  if (it == s.regs.end()) return;  // eager/internal: never registered
  const Reg r = it->second;
  s.regs.erase(it);
  if (r.has_sum) {
    ++s.stats.checksums;
    if (fnv1a(r.lo, static_cast<std::size_t>(r.hi - r.lo)) != r.sum) {
      raise("send-buffer-modified",
            "rank " + std::to_string(rank) + " modified the buffer of " +
                reg_str(r) +
                " while it was inflight (checksum at completion differs "
                "from checksum at post)");
    }
  }
}

bool handle_ok_slow(int rank, int req, const char* call) {
  raise("stale-request",
        std::string(call) + " on rank " + std::to_string(rank) +
            " used request handle #" + std::to_string(req) +
            " after it was released (double wait/test); the operation was "
            "skipped");
  return false;
}

void coll_posted_slow(int rank, std::uint32_t ctx, int kind, int root,
                      const char* name) {
  State& s = st();
  CollLog& log = s.colls[ctx];
  const std::size_t i = log.cursor[rank]++;
  if (i == log.order.size()) {
    log.order.push_back(CollLog::Entry{kind, root, name});
    return;
  }
  const CollLog::Entry& want = log.order[i];
  if (want.kind != kind || want.root != root) {
    raise("coll-order",
          "rank " + std::to_string(rank) + " posted " + name + "(root " +
              std::to_string(root) + ") as collective #" + std::to_string(i) +
              " on comm context " + std::to_string(ctx) +
              ", but another rank posted " + want.name + "(root " +
              std::to_string(want.root) +
              ") there — collectives must be posted in the same order with "
              "the same root on every rank");
  }
}

void persist_misuse_slow(int rank, const char* call, const char* what) {
  raise("persist-misuse",
        std::string(call) + " on rank " + std::to_string(rank) + ": " + what +
            " — persistent/partitioned requests cycle init -> start -> "
            "complete -> (restart | free), with every partition marked "
            "ready exactly once per generation");
}

void teardown_slow(int rank, std::size_t leaked) {
  if (leaked == 0) return;
  raise("request-leak",
        "rank " + std::to_string(rank) + " reached Cluster teardown with " +
            std::to_string(leaked) +
            " active request(s) — every request must be completed by "
            "wait/test before rank_main returns");
}

}  // namespace detail

#else  // MPIOFFLOAD_NO_SAN

bool begin_session(const Options&) { return false; }
bool begin_session(const std::string& spec) {
  (void)Options::parse(spec);  // still validate, so bad specs don't pass CI
  return false;
}
void end_session() {}

const std::vector<Report>& reports() {
  static const std::vector<Report> kNone;
  return kNone;
}
std::size_t count(const char*) { return 0; }
const Stats& stats() {
  static const Stats kNone;
  return kNone;
}

std::string engine_block_message(const char* what) {
  return std::string("blocking wait in offload-engine context (") + what +
         "): continuations must not block the offload engine "
         "(attach another continuation instead)";
}

#endif  // MPIOFFLOAD_NO_SAN

}  // namespace san
