// MPIOFF_SAN — fiber-aware race detector + MPI-usage sanitizer.
//
// TSan cannot see this codebase's concurrency: the simulator's fibers are
// cooperatively scheduled on one OS thread, so every fiber-interleaving race
// looks single-threaded to a hardware-level detector, and the model checker
// (src/check/) only covers the four extracted lock-free structures. This
// layer watches the whole system instead, from inside the simulation:
//
//  (1) Race detector — FastTrack vector clocks (san/vclock.hpp) driven by
//      annotations on the simulator's REAL synchronization edges: fiber
//      spawn (fork), Engine::unblock (wake), event post/fire causality,
//      Mutex/Barrier/Notifier acquire-release, SPSC-lane and MPSC-ring
//      publish/consume, RequestPool alloc/free, ContTable claim-CAS. Shadow
//      state on explicitly annotated fields (san::check_read/check_write)
//      reports both sides of any pair of accesses with no happens-before
//      edge between them.
//
//  (2) MPI-usage lint — registers each request's buffer byte-range at post
//      time and diagnoses: writes to inflight send buffers (checksum at post
//      vs at completion), annotated reads/writes overlapping inflight
//      registrations, wait/test on a released (stale) handle, requests still
//      active at Cluster teardown, blocking waits from offload-engine
//      context, and collective posting-order/root mismatches across ranks.
//
// Gating: zero-cost when off. Every hook is an inline one-branch test of a
// plain bool that is false outside a session; a session only starts when an
// MPIOFF_SAN spec (or ClusterConfig::san_spec) enables it. Configuring CMake
// with -DMPIOFFLOAD_ENABLE_SAN=OFF compiles the hooks out entirely.
//
// Determinism: the sanitizer never advances virtual time and never perturbs
// scheduling, so a run's MPI-visible behavior (payloads, timings, traces) is
// bit-identical with the sanitizer on or off. Reports are deterministic too:
// same build + same seed + same spec => same report strings in the same
// order.
//
// Spec grammar (MPIOFF_SAN or ClusterConfig::san_spec):
//   "1"                          everything on, report-only
//   "0" / ""                     off
//   "1,race:0,usage:1,fail:1,max_reports:16"
// Unknown or duplicate keys throw, naming the valid vocabulary. fail:1
// throws san::Error at the first report (CI mode).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace san {

struct Options {
  bool enabled = false;
  bool race = true;            ///< vector-clock race detector
  bool usage = true;           ///< MPI buffer/request/collective lint
  bool fail = false;           ///< throw san::Error at the first report
  std::size_t max_reports = 64;

  /// Parse an MPIOFF_SAN spec. "" and "0" disable; unknown/duplicate keys
  /// throw std::invalid_argument naming the vocabulary.
  static Options parse(const std::string& spec);
};

/// Thrown at report time under fail:1. Derives std::logic_error so call
/// sites that already promise logic_error on misuse (blocking waits from
/// engine context) keep their documented contract under the sanitizer.
class Error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct Report {
  std::string kind;     ///< stable machine-checkable tag, e.g. "race"
  std::string message;  ///< full human-readable diagnostic
};

struct Stats {
  std::uint64_t reports = 0;      ///< diagnostics raised (incl. deduped)
  std::uint64_t race_checks = 0;  ///< shadow-state accesses checked
  std::uint64_t sync_edges = 0;   ///< HB edges observed (all kinds)
  std::uint64_t buffer_regs = 0;  ///< inflight buffer registrations
  std::uint64_t checksums = 0;    ///< post/complete checksum computations
};

// ------------------------------------------------------------- session ----

/// Start a session from parsed options / a spec string. Returns true when a
/// session actually started (spec enabled and not nested inside another
/// session — nesting just increments a depth count). Starting a session
/// resets reports and stats.
bool begin_session(const Options& o);
bool begin_session(const std::string& spec);
void end_session();

/// Reports and stats survive end_session() (readable after Cluster
/// teardown); the next begin_session() resets them.
[[nodiscard]] const std::vector<Report>& reports();
[[nodiscard]] std::size_t count(const char* kind);
[[nodiscard]] const Stats& stats();

/// Uniform diagnostic for a blocking wait reaching the offload engine's own
/// fiber. Records an "engine-block" report when the lint is armed, and
/// always returns the message the caller must throw as std::logic_error.
[[nodiscard]] std::string engine_block_message(const char* what);

#ifndef MPIOFFLOAD_NO_SAN

namespace detail {
extern bool g_on;     // session active
extern bool g_race;   // race detector armed
extern bool g_usage;  // usage lint armed

void on_switch_slow(std::uint64_t actor, const char* name, std::int64_t ns);
void on_fork_slow(std::uint64_t child, const char* name);
void on_wake_slow(std::uint64_t target);
void event_post_slow(std::uint64_t seq);
void event_fire_slow(std::uint64_t seq, std::int64_t ns);
void acquire_slow(const void* obj, std::uint64_t sub);
void release_slow(const void* obj, std::uint64_t sub);
void channel_push_slow(const void* chan, std::uint64_t n);
void channel_pop_slow(const void* chan);
void access_slow(const void* p, std::size_t n, bool write, const char* site);
void post_send_slow(int rank, int req, const void* buf, std::size_t n);
void post_recv_slow(int rank, int req, const void* buf, std::size_t n);
void complete_slow(int rank, int req);
bool handle_ok_slow(int rank, int req, const char* call);
void coll_posted_slow(int rank, std::uint32_t ctx, int kind, int root,
                      const char* name);
void persist_misuse_slow(int rank, const char* call, const char* what);
void teardown_slow(int rank, std::size_t leaked);
}  // namespace detail

[[nodiscard]] inline bool on() { return detail::g_on; }
[[nodiscard]] inline bool race_on() { return detail::g_race; }
[[nodiscard]] inline bool usage_on() { return detail::g_usage; }

// ---------------------------------------------- race-detector hooks ----
// Called by sim::Engine and the sync primitives; actor 0 is the scheduler
// context, actor f.id()+1 is fiber f. None of these advance virtual time.

/// A fiber is about to run (Engine::dispatch). Joins any pending wake edges.
inline void on_switch(std::uint64_t actor, const char* name, std::int64_t ns) {
  if (detail::g_on) detail::on_switch_slow(actor, name, ns);
}
/// Fiber creation: child clock := creator clock ⊔ {child: 1}.
inline void on_fork(std::uint64_t child, const char* name) {
  if (detail::g_on) detail::on_fork_slow(child, name);
}
/// Engine::unblock(target): the waker's clock reaches the woken fiber.
inline void on_wake(std::uint64_t target) {
  if (detail::g_on) detail::on_wake_slow(target);
}
/// A fn-event was posted (Engine::call_at): snapshot the poster's clock.
inline void event_post(std::uint64_t seq) {
  if (detail::g_on) detail::event_post_slow(seq);
}
/// That fn-event fires: the scheduler context ADOPTS the snapshot (it does
/// not accumulate — the scheduler must not become a universal HB sink).
inline void event_fire(std::uint64_t seq, std::int64_t ns) {
  if (detail::g_on) detail::event_fire_slow(seq, ns);
}
/// Acquire/release on a sync object (mutex, notifier, barrier, pool slot,
/// cont slot); `sub` distinguishes slots within one owning object.
inline void acquire(const void* obj, std::uint64_t sub = 0) {
  if (detail::g_race) detail::acquire_slow(obj, sub);
}
inline void release(const void* obj, std::uint64_t sub = 0) {
  if (detail::g_race) detail::release_slow(obj, sub);
}
/// FIFO channel publish/consume (SPSC lane, MPSC ring): each push enqueues
/// the producer's clock, each pop joins the matching message's clock —
/// per-message, not per-object, so two lanes never synchronize each other.
inline void channel_push(const void* chan, std::uint64_t n = 1) {
  if (detail::g_race) detail::channel_push_slow(chan, n);
}
inline void channel_pop(const void* chan) {
  if (detail::g_race) detail::channel_pop_slow(chan);
}

// ------------------------------------------------- public annotations ----
// For app/library code: declare an intentional access to a shared field or
// a user buffer. Feeds BOTH halves — the race detector's shadow state and
// the usage lint's inflight-buffer overlap check.

inline void check_read(const void* p, std::size_t n, const char* site) {
  if (detail::g_on) detail::access_slow(p, n, false, site);
}
inline void check_write(const void* p, std::size_t n, const char* site) {
  if (detail::g_on) detail::access_slow(p, n, true, site);
}

// --------------------------------------------------- usage-lint hooks ----
// Called by the MPI layer (smpi::RankCtx) on the request lifecycle.

/// Rendezvous send posted: register [buf, buf+n) and checksum it. The range
/// stays registered (and must stay byte-stable) until mpi_complete.
inline void mpi_post_send(int rank, int req, const void* buf, std::size_t n) {
  if (detail::g_usage) detail::post_send_slow(rank, req, buf, n);
}
/// Receive posted and not yet complete: register the inflight target range.
inline void mpi_post_recv(int rank, int req, const void* buf, std::size_t n) {
  if (detail::g_usage) detail::post_recv_slow(rank, req, buf, n);
}
/// Request released back to the table: verify the send checksum, drop any
/// registration. No-op for never-registered requests (eager, internal).
inline void mpi_complete(int rank, int req) {
  if (detail::g_usage) detail::complete_slow(rank, req);
}
/// Wait/test on handle `req` whose table slot is no longer active: reports
/// "stale-request" and returns false (caller must treat the handle as null
/// instead of corrupting the free list). Returns true when the lint is off.
inline bool mpi_handle_ok(int rank, int req, bool active, const char* call) {
  if (!detail::g_usage || active) return true;
  return detail::handle_ok_slow(rank, req, call);
}
/// Collective posted on communicator context `ctx`: checks every rank posts
/// the same (kind, root) sequence per context.
inline void mpi_coll_posted(int rank, std::uint32_t ctx, int kind, int root,
                            const char* name) {
  if (detail::g_usage) detail::coll_posted_slow(rank, ctx, kind, root, name);
}
/// Persistent/partitioned lifecycle misuse (start-before-complete, Pready on
/// an inactive request, double-marked partition, wait with unmarked
/// partitions, free of an active request). Records a "persist-misuse"
/// report; the call site ALWAYS throws std::logic_error afterwards, so this
/// hook only feeds the report stream (and fail:1 turns it into san::Error,
/// which still IS a logic_error).
inline void mpi_persist_misuse(int rank, const char* call, const char* what) {
  if (detail::g_usage) detail::persist_misuse_slow(rank, call, what);
}
/// Cluster teardown: `leaked` = RequestTable::active_count() for the rank.
inline void mpi_teardown(int rank, std::size_t leaked) {
  if (detail::g_usage) detail::teardown_slow(rank, leaked);
}

#else  // MPIOFFLOAD_NO_SAN: hooks compile to nothing.

[[nodiscard]] inline bool on() { return false; }
[[nodiscard]] inline bool race_on() { return false; }
[[nodiscard]] inline bool usage_on() { return false; }
inline void on_switch(std::uint64_t, const char*, std::int64_t) {}
inline void on_fork(std::uint64_t, const char*) {}
inline void on_wake(std::uint64_t) {}
inline void event_post(std::uint64_t) {}
inline void event_fire(std::uint64_t, std::int64_t) {}
inline void acquire(const void*, std::uint64_t = 0) {}
inline void release(const void*, std::uint64_t = 0) {}
inline void channel_push(const void*, std::uint64_t = 1) {}
inline void channel_pop(const void*) {}
inline void check_read(const void*, std::size_t, const char*) {}
inline void check_write(const void*, std::size_t, const char*) {}
inline void mpi_post_send(int, int, const void*, std::size_t) {}
inline void mpi_post_recv(int, int, const void*, std::size_t) {}
inline void mpi_complete(int, int) {}
inline bool mpi_handle_ok(int, int, bool, const char*) { return true; }
inline void mpi_coll_posted(int, std::uint32_t, int, int, const char*) {}
inline void mpi_persist_misuse(int, const char*, const char*) {}
inline void mpi_teardown(int, std::size_t) {}

#endif  // MPIOFFLOAD_NO_SAN

}  // namespace san
