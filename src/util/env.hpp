// Single audited funnel for environment-variable lookups.
//
// Every MPIOFF_* knob is read through env_util, exactly once, at startup —
// before any fibers are spawned and before any std::thread exists. That
// single call site below carries the one concurrency-mt-unsafe exemption the
// whole tree needs, instead of a NOLINT restating the same argument at every
// getenv call. New knobs must go through here: clang-tidy (with
// concurrency-* in WarningsAsErrors) fails the build on any bare std::getenv
// added elsewhere.
#pragma once

#include <cstdlib>
#include <string>

namespace env_util {

/// Raw lookup: nullptr when the variable is unset. Only safe because every
/// caller runs single-threaded at startup; this is the audited exemption.
inline const char* get(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, pre-threads
  return std::getenv(name);
}

/// True when the variable is set to a non-empty value.
inline bool set_nonempty(const char* name) {
  const char* s = get(name);
  return s != nullptr && *s != '\0';
}

/// The variable's value, or `fallback` when unset or empty.
inline std::string get_or(const char* name, const char* fallback = "") {
  const char* s = get(name);
  return (s != nullptr && *s != '\0') ? std::string(s) : std::string(fallback);
}

/// Positive integer value, or `fallback` when unset, empty, or <= 0.
inline long long positive_or(const char* name, long long fallback) {
  const char* s = get(name);
  if (s == nullptr || *s == '\0') return fallback;
  const long long v = std::atoll(s);
  return v > 0 ? v : fallback;
}

}  // namespace env_util
