#include "util/spec_parser.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace util {

SpecParser::SpecParser(std::string env_name, std::string separators,
                       std::string vocabulary)
    : env_(std::move(env_name)),
      separators_(std::move(separators)),
      vocabulary_(std::move(vocabulary)) {}

SpecParser& SpecParser::key(const std::string& name, bool repeatable) {
  keys_.push_back(KeyInfo{name, repeatable});
  return *this;
}

SpecParser& SpecParser::open_keys(
    std::function<bool(const std::string&)> accept) {
  open_accept_ = std::move(accept);
  return *this;
}

void SpecParser::fail(const std::string& what) const {
  throw std::invalid_argument(env_ + ": " + what);
}

const SpecParser::KeyInfo* SpecParser::find_key(const std::string& name) const {
  for (const KeyInfo& k : keys_) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

std::vector<SpecItem> SpecParser::parse(const std::string& spec) const {
  std::vector<SpecItem> items;
  std::vector<std::string> seen_once;  // non-repeatable keys already used
  std::size_t pos = 0;
  const std::string kv_shape =
      "key" + std::string(1, separators_.front()) + "value";
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;  // tolerate trailing/doubled commas
    const std::size_t sep = item.find_first_of(separators_);
    if (sep == std::string::npos) {
      fail("expected " + kv_shape + ", got '" + item + "'");
    }
    const std::string key = item.substr(0, sep);
    const std::string val = item.substr(sep + 1);
    if (key.empty()) {
      fail("malformed token '" + item + "' (expected " + kv_shape + ")");
    }
    const KeyInfo* info = find_key(key);
    if (info == nullptr) {
      if (!open_accept_ || !open_accept_(key)) {
        fail("unknown key '" + key + "' (valid: " + vocabulary_ + ")");
      }
    } else if (!info->repeatable) {
      if (std::find(seen_once.begin(), seen_once.end(), key) !=
          seen_once.end()) {
        fail("duplicate key '" + key + "' (valid: " + vocabulary_ + ")");
      }
      seen_once.push_back(key);
    }
    items.push_back(SpecItem{key, val, item});
  }
  return items;
}

// ------------------------------------------------------- value scanners ----

std::size_t SpecParser::parse_count(const std::string& env,
                                    const std::string& v,
                                    const std::string& where) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument(env + ": bad count for '" + where + "': " + v);
  }
  return static_cast<std::size_t>(n);
}

std::size_t SpecParser::parse_bytes(const std::string& env,
                                    const std::string& v,
                                    const std::string& where) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str()) {
    throw std::invalid_argument(env + ": bad size in '" + where + "'");
  }
  std::size_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = 1024;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1024 * 1024;
    ++end;
  }
  if (*end != '\0') {
    throw std::invalid_argument(env + ": bad size in '" + where + "'");
  }
  return static_cast<std::size_t>(n) * mult;
}

sim::Time SpecParser::parse_duration(const std::string& env,
                                     const std::string& v,
                                     const std::string& where) {
  char* end = nullptr;
  const double n = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || n < 0) {
    throw std::invalid_argument(env + ": bad duration for '" + where +
                                "': " + v);
  }
  const std::string unit(end);
  if (unit.empty() || unit == "ns") {
    return sim::Time(static_cast<std::int64_t>(n));
  }
  if (unit == "us") return sim::Time::from_us(n);
  if (unit == "ms") return sim::Time::from_ms(n);
  if (unit == "s") return sim::Time::from_sec(n);
  throw std::invalid_argument(env + ": bad unit for '" + where + "': " + v);
}

double SpecParser::parse_prob(const std::string& env, const std::string& v,
                              const std::string& where) {
  char* end = nullptr;
  const double p = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(env + ": bad probability for '" + where +
                                "': " + v);
  }
  return p;
}

bool SpecParser::parse_bool(const std::string& env, const std::string& v,
                            const std::string& where) {
  if (v == "0") return false;
  if (v == "1") return true;
  throw std::invalid_argument(env + ": key '" + where + "' takes 0 or 1, got '" +
                              v + "'");
}

}  // namespace util
