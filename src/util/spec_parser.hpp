// SpecParser — the one grammar engine behind every MPIOFF_* environment
// spec (MPIOFF_PROXY, MPIOFF_COLL, MPIOFF_SAN, MPIOFF_FAULTS).
//
// All four knobs speak the same surface language — comma-separated
// key/value items — but each grew its own hand-rolled tokenizer with its
// own duplicate-key bookkeeping and its own slightly-different error
// strings. This class centralizes the parts that were copy-pasted:
//
//   * tokenization (split on ',', skip empty items),
//   * key/value splitting on a per-grammar separator set ("=", ":" or both),
//   * duplicate-key rejection with an opt-out for repeatable keys
//     (MPIOFF_COLL's per-collective rules stack; everything else is
//     single-valued),
//   * unknown-key diagnostics that name the valid vocabulary,
//   * the shared value scanners (counts, byte sizes with k/m suffixes,
//     durations with ns/us/ms/s suffixes, probabilities, booleans).
//
// What stays with the caller is only the *meaning* of each key: callers get
// back an ordered item list and assign fields. A grammar with an open key
// class (MPIOFF_COLL accepts any collective name as a key) registers a
// fallback predicate via open_keys().
//
// Error contract: every failure throws std::invalid_argument whose message
// starts with the env-var name and, for key errors, names the valid
// vocabulary — a retuning wrapper script that appends to an inherited spec
// should fail loudly, not silently last-write-win.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace util {

/// One parsed `key<sep>value` item, in spec order. `raw` is the original
/// item text for error messages that quote what the user typed.
struct SpecItem {
  std::string key;
  std::string value;
  std::string raw;
};

class SpecParser {
 public:
  /// `env_name` prefixes every diagnostic; `separators` is the set of
  /// accepted key/value separator characters (e.g. "=", ":", "=:");
  /// `vocabulary` is the human-readable key list quoted by key errors.
  SpecParser(std::string env_name, std::string separators,
             std::string vocabulary);

  /// Register a key. Non-repeatable keys may appear at most once.
  SpecParser& key(const std::string& name, bool repeatable = false);

  /// Accept keys outside the registered set when `accept(key)` is true;
  /// such keys are always repeatable (MPIOFF_COLL's threshold rules stack).
  SpecParser& open_keys(std::function<bool(const std::string&)> accept);

  /// Tokenize + validate `spec`; items come back in spec order.
  [[nodiscard]] std::vector<SpecItem> parse(const std::string& spec) const;

  /// Throw std::invalid_argument with the env-name prefix.
  [[noreturn]] void fail(const std::string& what) const;

  // ---- shared value scanners (static: also usable before construction) ----
  /// Non-negative integer, no suffix.
  static std::size_t parse_count(const std::string& env, const std::string& v,
                                 const std::string& where);
  /// Byte size with optional k/K (KiB) or m/M (MiB) suffix.
  static std::size_t parse_bytes(const std::string& env, const std::string& v,
                                 const std::string& where);
  /// Duration with optional ns/us/ms/s suffix (bare number = ns).
  static sim::Time parse_duration(const std::string& env, const std::string& v,
                                  const std::string& where);
  /// Probability in [0, 1].
  static double parse_prob(const std::string& env, const std::string& v,
                           const std::string& where);
  /// Strict boolean: "0" or "1".
  static bool parse_bool(const std::string& env, const std::string& v,
                         const std::string& where);

 private:
  struct KeyInfo {
    std::string name;
    bool repeatable = false;
  };
  [[nodiscard]] const KeyInfo* find_key(const std::string& name) const;

  std::string env_;
  std::string separators_;
  std::string vocabulary_;
  std::vector<KeyInfo> keys_;
  std::function<bool(const std::string&)> open_accept_;
};

}  // namespace util
