// Machine profiles: the calibrated cost parameters of the simulated clusters.
//
// These numbers are chosen to match the platforms in the paper's Section 4
// (Endeavor: dual-socket 14-core Xeon E5-2697v3 + FDR InfiniBand; Endeavor
// Xeon Phi 61-core coprocessors; NERSC Edison: Cray XC30 + Aries). Absolute
// fidelity is not the goal — the protocol mechanics are — but the constants
// are set so the microbenchmark outputs land in the same regime as the
// paper's figures (e.g. ~1.3 us small-message latency on FDR, ~140 ns offload
// command-post cost, 128 KB eager/rendezvous threshold).
#pragma once

#include <cstdint>
#include <string>

#include "machine/fault.hpp"
#include "sim/time.hpp"

namespace machine {

struct Profile {
  std::string name;

  // ---- node ----
  /// Hardware threads usable by one MPI rank (E5-2697v3: 14 cores x 2 HT).
  /// A dedicated communication thread costs one of these — ~3.6%, matching
  /// the paper's 1-5% internal-compute slowdown.
  int cores_per_rank = 28;

  /// NUMA domains spanned by one rank. One offload engine fiber per domain
  /// is the natural default (each proxy drains the lanes of its socket's
  /// submitters); rank-per-socket layouts have exactly one.
  int numa_domains = 2;

  /// CPU copy bandwidth in bytes per nanosecond (single thread). Governs the
  /// eager-protocol internal memcpy cost that dominates MPI_Isend issue time
  /// below the rendezvous threshold.
  double copy_bytes_per_ns = 8.0;  // ~8 GB/s effective single-thread copy

  // ---- MPI software costs ----
  sim::Time mpi_call_overhead{120};       ///< fixed cost of entering any MPI call
  sim::Time mpi_match_cost{80};          ///< matching/queue handling per message
  sim::Time mpi_progress_poll_cost{40};   ///< one pass of the progress engine
  sim::Time rndv_handshake_cpu{300};      ///< CPU cost to process an RTS or CTS

  /// Extra per-call cost when initialized with THREAD_MULTIPLE (atomic ops,
  /// lock acquisition even without contention). Matches the ~1-3 us gap the
  /// paper reports between FUNNELED and MULTIPLE issue paths.
  sim::Time thread_multiple_entry{2200};
  /// Acquire cost of the implementation's global lock in THREAD_MULTIPLE.
  sim::Time big_lock_acquire{120};
  /// Progress-engine slice executed while holding the big lock; bounds how
  /// long a blocked thread keeps other threads out of the library.
  sim::Time big_lock_slice{400};
  /// In THREAD_MULTIPLE a blocked thread re-enters the progress engine this
  /// often even without an arrival (real implementations spin through
  /// lock/progress/unlock cycles); source of the contention the paper's
  /// Fig. 6/7 attribute to MPI_THREAD_MULTIPLE.
  sim::Time multiple_repoll{1000};

  /// Local reduction combine throughput (bytes of operand per ns).
  double reduce_bytes_per_ns = 4.0;

  // ---- collective algorithm selection (mpi/coll_tuner.hpp) ----
  /// Segment size for chunked/pipelined collective schedules (ring,
  /// pipelined bcast): each segment becomes an independent stage chain so
  /// chunk k+1's sends post while chunk k's combine runs.
  std::size_t coll_seg_bytes = 64 * 1024;
  /// Cap on concurrent chains per collective; the effective segment grows
  /// instead, so CNN-scale vectors stay tractable in the simulator. Eight
  /// keeps the ring pipeline full on 64-node MB-scale gradient allreduces
  /// (Fig. 14) without measurable cost at small scale.
  int coll_max_chains = 8;
  /// Size thresholds for the bandwidth-optimal schedules (bytes of the
  /// tuning size; see CollTuner::choose for what that means per collective).
  std::size_t coll_ring_allreduce_min = 128 * 1024;
  std::size_t coll_ring_allgather_min = 128 * 1024;
  std::size_t coll_pipeline_bcast_min = 256 * 1024;
  std::size_t coll_rabenseifner_min = 64 * 1024;
  /// Post each collective stage's internal sends as one descriptor batch —
  /// one doorbell per stage instead of one per send (the post_batch-style
  /// amortization of PR 4, applied to schedule-internal p2p).
  bool coll_batch_doorbells = true;

  // ---- protocol switch ----
  std::size_t eager_threshold = 128 * 1024;  ///< bytes; > this uses rendezvous
  /// Rendezvous transfers are pipelined in chunks; injecting each chunk
  /// needs the progress engine (software), so a rank that never enters MPI
  /// keeps at most `rndv_pipeline_depth` chunks in flight. This is the
  /// mainstream-MPI behaviour that denies the baseline approach overlap on
  /// large messages (paper Fig. 2).
  std::size_t rndv_chunk_bytes = 512 * 1024;
  int rndv_pipeline_depth = 4;
  std::size_t eager_pool_bytes = 64 * 1024 * 1024;  ///< per-rank unexpected buffer

  // ---- network ----
  sim::Time net_latency{1600};           ///< wire + switch latency, one way
  double net_bytes_per_ns = 6.0;        ///< NIC serialization bandwidth (6 GB/s ~ FDR)
  /// Aggregate fabric (bisection) bandwidth in bytes/ns; 0 disables the
  /// shared-fabric constraint (full bisection). Real fat-tree/dragonfly
  /// fabrics taper, which is why all-to-all bandwidth per node shrinks with
  /// node count (paper Sec. 5.2).
  double bisection_bytes_per_ns = 0.0;
  sim::Time nic_doorbell{200};          ///< CPU cost to hand a descriptor to the NIC
  /// Wire-fault injection (off by default: the fabric is perfectly reliable
  /// and the fault/reliability machinery is completely inert). Enable per
  /// profile or via the MPIOFF_FAULTS environment spec (see machine/fault.hpp).
  FaultSpec faults;

  // ---- offload infrastructure costs (Section 3) ----
  sim::Time cmd_enqueue{120};        ///< serialize call params + lock-free push
  /// An in-flight offload request older than this is flagged by the engine's
  /// watchdog (OffloadStats::watchdog_flags + a trace instant). Counting
  /// only — it never alters timing. Zero disables the watchdog.
  sim::Time offload_watchdog_budget{500'000'000};  // 500 ms virtual
  sim::Time cmd_dequeue{50};        ///< pop + deserialize on the offload thread
  sim::Time cmd_detect{40};         ///< offload thread's poll granularity
  sim::Time done_flag_check{20};    ///< app-side read of the done flag
  sim::Time done_flag_detect{40};   ///< app spin-poll granularity on done flag
  sim::Time request_pool_op{15};    ///< lock-free pool alloc/free

  /// Marginal serialize cost of each *additional* command in a batched
  /// submit: the fixed part of cmd_enqueue (cache-line handoff, doorbell
  /// setup) is paid once per batch, later commands only pay argument
  /// marshalling into already-hot lane cells.
  sim::Time cmd_enqueue_batch{40};
  /// Re-arm command of a persistent (init-once/start-many) offload request:
  /// the envelope already lives in the engine's persistent slot, so the app
  /// thread only publishes a slot index — no parameter marshalling, no pool
  /// alloc. This is the amortization persistent requests exist for.
  sim::Time cmd_enqueue_persist{40};
  /// MPI-layer Start on a prebuilt persistent envelope (replaces
  /// mpi_call_overhead for that entry: no argument validation, no envelope
  /// construction — matches the cheap MPI_Start of mainstream MPIs).
  sim::Time persist_start{40};
  /// App-side publish of one partition-ready bit (MPI_Pready): one RMW on
  /// the ready word plus the engine doorbell.
  sim::Time pready_publish{25};
  /// Cost for a producer to gain ownership of the shared MPSC ring's tail
  /// cache line when another thread touched it last. This is the per-push
  /// serialization that sharded per-thread lanes exist to avoid: concurrent
  /// submitters to the single shared ring each pay one line transfer, while
  /// lane submitters never contend.
  sim::Time mpsc_line_transfer{100};
  /// Adaptive engine wait policy (spin -> yield -> doorbell sleep): number
  /// of pure spin polls (each costing cmd_detect) before the engine starts
  /// yielding, and number of yield polls before it blocks on the doorbell.
  int engine_spin_polls = 4;
  int engine_yield_polls = 2;

  // ---- derived helpers ----
  [[nodiscard]] sim::Time copy_cost(std::size_t bytes) const {
    return sim::Time(static_cast<std::int64_t>(static_cast<double>(bytes) / copy_bytes_per_ns));
  }
  [[nodiscard]] sim::Time wire_cost(std::size_t bytes) const {
    return sim::Time(static_cast<std::int64_t>(static_cast<double>(bytes) / net_bytes_per_ns));
  }
  [[nodiscard]] sim::Time reduce_cost(std::size_t bytes) const {
    return sim::Time(static_cast<std::int64_t>(static_cast<double>(bytes) / reduce_bytes_per_ns));
  }
};

/// Endeavor Xeon (E5-2697v3, FDR InfiniBand) — the paper's main platform.
Profile xeon_fdr();

/// Endeavor Xeon Phi coprocessor (61 slow cores, same fabric). Software
/// overheads scale up ~5x, copy bandwidth per thread is lower — this is what
/// drives the paper's Fig. 8 (offload overhead grows to ~1.7 us).
Profile xeon_phi();

/// NERSC Edison (Cray XC30, Aries dragonfly): lower latency, higher bandwidth.
Profile aries();

/// Edison with the Cray "core specialization" feature (paper Fig. 9b): a
/// reserved core runs the MPI progress engine inside the implementation, so
/// the locking overheads of the generic THREAD_MULTIPLE path are much lower
/// than a user-level comm-self thread's. Modeled as the aries profile with
/// reduced multithreading costs; driven through the comm-self proxy.
Profile aries_corespec();

}  // namespace machine
