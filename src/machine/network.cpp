#include "machine/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "trace/tracer.hpp"

namespace machine {

namespace {
/// Minimum bytes a message occupies on the wire (headers/flits).
constexpr std::size_t kMinWireBytes = 64;
}  // namespace

Network::Network(sim::Engine& engine, const Profile& profile, int nranks)
    : engine_(engine),
      profile_(profile),
      nranks_(nranks),
      egress_free_(static_cast<std::size_t>(nranks), sim::Time::zero()),
      ingress_free_(static_cast<std::size_t>(nranks), sim::Time::zero()),
      handlers_(static_cast<std::size_t>(nranks)) {
  auto& tr = trace::Tracer::instance();
  for (int r = 0; r < nranks; ++r) {
    tr.name_thread(r, trace::kHwTid, "hw");
    tr.name_thread(r, trace::kNicTxTid, "nic.tx");
    tr.name_thread(r, trace::kNicRxTid, "nic.rx");
  }
}

void Network::set_delivery_handler(int rank, DeliveryHandler handler) {
  handlers_.at(static_cast<std::size_t>(rank)) = std::move(handler);
}

void Network::send(NetMessage&& msg) {
  assert(msg.src >= 0 && msg.src < nranks_);
  assert(msg.dst >= 0 && msg.dst < nranks_);
  const std::size_t wire = std::max(msg.wire_bytes, kMinWireBytes);
  const sim::Time ser = profile_.wire_cost(wire);
  const sim::Time now = engine_.now();

  ++stats_.messages;
  stats_.bytes += wire;

  auto& eg = egress_free_[static_cast<std::size_t>(msg.src)];
  const sim::Time depart = std::max(now, eg);
  eg = depart + ser;

  // Shared-fabric constraint: the message also occupies the aggregate
  // bisection for bytes/bisection_bw (tapered networks only).
  sim::Time reach = depart + ser + profile_.net_latency;
  if (profile_.bisection_bytes_per_ns > 0) {
    const sim::Time fser(static_cast<std::int64_t>(
        static_cast<double>(wire) / profile_.bisection_bytes_per_ns));
    const sim::Time fstart = std::max(depart + ser, fabric_free_);
    fabric_free_ = fstart + fser;
    reach = std::max(reach, fabric_free_ + profile_.net_latency);
  }

  auto& in = ingress_free_[static_cast<std::size_t>(msg.dst)];
  const sim::Time deliver = std::max(reach, in + ser);
  in = deliver;

  if (trace::Tracer::on()) {
    auto& tr = trace::Tracer::instance();
    char label[48];
    std::snprintf(label, sizeof label, "wire %zuB >%d", wire, msg.dst);
    // Egress: head-of-line queueing (if the NIC was busy) then serialization.
    if (depart > now) {
      tr.complete(now.ns(), (depart - now).ns(), msg.src, trace::kNicTxTid,
                  "queue", "net");
    }
    tr.complete(depart.ns(), ser.ns(), msg.src, trace::kNicTxTid, label, "net");
    // Ingress occupancy ending at delivery.
    std::snprintf(label, sizeof label, "wire %zuB <%d", wire, msg.src);
    tr.complete((deliver - ser).ns(), ser.ns(), msg.dst, trace::kNicRxTid,
                label, "net");
  }

  // The handler lookup is deferred to delivery time so handlers can be
  // (re)registered while traffic is in flight.
  auto boxed = std::make_shared<NetMessage>(std::move(msg));
  engine_.call_at(deliver, [this, boxed]() {
    auto& h = handlers_[static_cast<std::size_t>(boxed->dst)];
    if (!h) {
      throw std::logic_error("network delivery to rank without handler");
    }
    h(std::move(*boxed));
  });
}

}  // namespace machine
