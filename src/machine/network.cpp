#include "machine/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "trace/scope.hpp"
#include "trace/tracer.hpp"

namespace machine {

namespace {
/// Minimum bytes a message occupies on the wire (headers/flits).
constexpr std::size_t kMinWireBytes = 64;

/// Flip one bit of the frame, chosen by `pick`. Payload bits if the frame
/// carries data inline, header words otherwise — either way the damage is
/// detectable only by the end-to-end checksum.
void corrupt_frame(NetMessage& m, std::uint64_t pick) {
  if (!m.payload.empty()) {
    const std::uint64_t bit = pick % (m.payload.size() * 8);
    m.payload[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    return;
  }
  std::uint64_t* words[] = {&m.h0, &m.h1, &m.h2, &m.h3};
  *words[(pick / 64) % 4] ^= 1ull << (pick % 64);
}
}  // namespace

Network::Network(sim::Engine& engine, const Profile& profile, int nranks)
    : engine_(engine),
      profile_(profile),
      nranks_(nranks),
      egress_free_(static_cast<std::size_t>(nranks), sim::Time::zero()),
      ingress_free_(static_cast<std::size_t>(nranks), sim::Time::zero()),
      handlers_(static_cast<std::size_t>(nranks)) {
  if (profile_.faults.enabled()) {
    faults_ = std::make_unique<FaultPlan>(profile_.faults, nranks,
                                          profile_.net_latency);
    stall_accum_.assign(static_cast<std::size_t>(nranks), sim::Time::zero());
  }
  auto& tr = trace::Tracer::instance();
  for (int r = 0; r < nranks; ++r) {
    tr.name_thread(r, trace::kHwTid, "hw");
    tr.name_thread(r, trace::kNicTxTid, "nic.tx");
    tr.name_thread(r, trace::kNicRxTid, "nic.rx");
  }
}

void Network::set_delivery_handler(int rank, DeliveryHandler handler) {
  handlers_.at(static_cast<std::size_t>(rank)) = std::move(handler);
}

void Network::schedule_delivery(sim::Time when, NetMessage&& msg) {
  // The handler lookup is deferred to delivery time so handlers can be
  // (re)registered while traffic is in flight.
  auto boxed = std::make_shared<NetMessage>(std::move(msg));
  engine_.call_at(when, [this, boxed]() {
    auto& h = handlers_[static_cast<std::size_t>(boxed->dst)];
    if (!h) {
      throw std::logic_error("network delivery to rank without handler");
    }
    h(std::move(*boxed));
  });
}

void Network::send(NetMessage&& msg) {
  assert(msg.src >= 0 && msg.src < nranks_);
  assert(msg.dst >= 0 && msg.dst < nranks_);
  FaultDecision fd;
  if (faults_ != nullptr) fd = faults_->decide(msg.src, msg.dst);
  const std::size_t wire = std::max(msg.wire_bytes, kMinWireBytes);
  const sim::Time ser = profile_.wire_cost(wire);
  const sim::Time now = engine_.now();

  ++stats_.messages;
  stats_.bytes += wire;

  auto& eg = egress_free_[static_cast<std::size_t>(msg.src)];
  if (fd.egress_stall > sim::Time::zero()) {
    // The source NIC pauses (link-level flow control, firmware hiccup):
    // everything queued behind this frame is pushed out too.
    eg = std::max(now, eg) + fd.egress_stall;
    stall_accum_[static_cast<std::size_t>(msg.src)] += fd.egress_stall;
    trace::instant(msg.src, trace::kNicTxTid, "fault:stall", "net");
    trace::counter(msg.src, "nic.stall_ns",
                   static_cast<double>(
                       stall_accum_[static_cast<std::size_t>(msg.src)].ns()));
  }
  const sim::Time depart = std::max(now, eg);
  eg = depart + ser;

  if (fd.drop) {
    // Lost in the fabric after serialization: the sender's NIC did its work,
    // nothing ever reaches the destination. Recovery (if any) is software.
    trace::instant(msg.src, trace::kNicTxTid, "fault:drop", "net");
    return;
  }

  // Shared-fabric constraint: the message also occupies the aggregate
  // bisection for bytes/bisection_bw (tapered networks only).
  sim::Time reach = depart + ser + profile_.net_latency;
  if (profile_.bisection_bytes_per_ns > 0) {
    const sim::Time fser(static_cast<std::int64_t>(
        static_cast<double>(wire) / profile_.bisection_bytes_per_ns));
    const sim::Time fstart = std::max(depart + ser, fabric_free_);
    fabric_free_ = fstart + fser;
    reach = std::max(reach, fabric_free_ + profile_.net_latency);
  }

  auto& in = ingress_free_[static_cast<std::size_t>(msg.dst)];
  if (fd.ingress_stall > sim::Time::zero()) {
    in = std::max(reach, in) + fd.ingress_stall;
    stall_accum_[static_cast<std::size_t>(msg.dst)] += fd.ingress_stall;
    trace::instant(msg.dst, trace::kNicRxTid, "fault:stall", "net");
    trace::counter(msg.dst, "nic.stall_ns",
                   static_cast<double>(
                       stall_accum_[static_cast<std::size_t>(msg.dst)].ns()));
  }
  const sim::Time occupied = std::max(reach, in + ser);
  in = occupied;
  // Delay/reorder jitter happens "in the fabric": it postpones this frame's
  // delivery without holding the ingress link, so later frames can overtake.
  const sim::Time deliver = occupied + fd.delay;

  if (trace::Tracer::on()) {
    auto& tr = trace::Tracer::instance();
    char label[48];
    std::snprintf(label, sizeof label, "wire %zuB >%d", wire, msg.dst);
    // Egress: head-of-line queueing (if the NIC was busy) then serialization.
    if (depart > now) {
      tr.complete(now.ns(), (depart - now).ns(), msg.src, trace::kNicTxTid,
                  "queue", "net");
    }
    tr.complete(depart.ns(), ser.ns(), msg.src, trace::kNicTxTid, label, "net");
    // Ingress occupancy ending at delivery.
    std::snprintf(label, sizeof label, "wire %zuB <%d", wire, msg.src);
    tr.complete((occupied - ser).ns(), ser.ns(), msg.dst, trace::kNicRxTid,
                label, "net");
  }

  if (fd.dup) {
    // Ghost copy, delivered slightly later; it carries the pre-corruption
    // bits so dup+corrupt still lands one intact frame.
    NetMessage copy = msg;
    trace::instant(msg.dst, trace::kNicRxTid, "fault:dup", "net");
    schedule_delivery(deliver + fd.dup_delay, std::move(copy));
  }
  if (fd.corrupt) {
    corrupt_frame(msg, fd.corrupt_bit);
    trace::instant(msg.dst, trace::kNicRxTid, "fault:corrupt", "net");
  }
  schedule_delivery(deliver, std::move(msg));
}

}  // namespace machine
