#include "machine/fault.hpp"

#include <cstdlib>
#include <stdexcept>

#include "sim/rng.hpp"
#include "util/spec_parser.hpp"

namespace machine {

namespace {

constexpr const char* kEnv = "MPIOFF_FAULTS";

constexpr const char* kValidKeys =
    "drop, dup, corrupt, delay, reorder, stall, rto, seed";

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double parse_prob(const std::string& v, const std::string& key) {
  return util::SpecParser::parse_prob(kEnv, v, key);
}

sim::Time parse_duration(const std::string& v, const std::string& key) {
  return util::SpecParser::parse_duration(kEnv, v, key);
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec f;
  f.on = true;
  util::SpecParser grammar(kEnv, "=", kValidKeys);
  grammar.key("drop")
      .key("dup")
      .key("corrupt")
      .key("delay")
      .key("reorder")
      .key("stall")
      .key("rto")
      .key("seed");
  for (const util::SpecItem& it : grammar.parse(spec)) {
    const std::string& key = it.key;
    std::string val = it.value;
    // "prob:duration" forms split the optional duration off first.
    std::string dur;
    if (const std::size_t colon = val.find(':'); colon != std::string::npos) {
      dur = val.substr(colon + 1);
      val = val.substr(0, colon);
    }
    if (key == "drop") {
      f.drop = parse_prob(val, key);
    } else if (key == "dup") {
      f.dup = parse_prob(val, key);
    } else if (key == "corrupt") {
      f.corrupt = parse_prob(val, key);
    } else if (key == "delay") {
      f.delay = parse_prob(val, key);
      if (!dur.empty()) f.delay_max = parse_duration(dur, key);
    } else if (key == "reorder") {
      f.reorder = parse_prob(val, key);
    } else if (key == "stall") {
      f.stall = parse_prob(val, key);
      if (!dur.empty()) f.stall_window = parse_duration(dur, key);
    } else if (key == "rto") {
      f.rto_base = parse_duration(val, key);
    } else if (key == "seed") {
      char* end = nullptr;
      f.seed = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str()) {
        throw std::invalid_argument("MPIOFF_FAULTS: bad seed: " + val);
      }
    }
    if (!dur.empty() && key != "delay" && key != "stall") {
      throw std::invalid_argument("MPIOFF_FAULTS: '" + key +
                                  "' does not take a duration");
    }
  }
  return f;
}

FaultPlan::FaultPlan(const FaultSpec& spec, int nranks, sim::Time net_latency)
    : spec_(spec),
      nranks_(nranks),
      net_latency_(net_latency),
      pair_ctr_(static_cast<std::size_t>(nranks) *
                static_cast<std::size_t>(nranks)) {}

FaultDecision FaultPlan::decide(int src, int dst) {
  const std::size_t pair = static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(nranks_) +
                           static_cast<std::size_t>(dst);
  const std::uint64_t ctr = pair_ctr_[pair]++;
  // Fresh per-frame stream: variable draw counts below cannot leak into any
  // other frame's decision, and global send order is irrelevant.
  sim::Rng rng(splitmix(splitmix(spec_.seed ^ (pair * 0x7fb5d329728ea185ull)) ^
                        ctr));
  ++stats_.frames;
  FaultDecision d;
  if (spec_.drop > 0 && rng.next_double() < spec_.drop) {
    d.drop = true;
    ++stats_.dropped;
  }
  if (spec_.dup > 0 && rng.next_double() < spec_.dup) {
    d.dup = true;
    d.dup_delay = sim::Time(1 + static_cast<std::int64_t>(
                                    rng.uniform(0, static_cast<double>(
                                                       net_latency_.ns()))));
    ++stats_.duplicated;
  }
  if (spec_.corrupt > 0 && rng.next_double() < spec_.corrupt) {
    d.corrupt = true;
    d.corrupt_bit = rng.next_u64();
    ++stats_.corrupted;
  }
  if (spec_.delay > 0 && rng.next_double() < spec_.delay) {
    d.delay += sim::Time(static_cast<std::int64_t>(
        rng.uniform(0, static_cast<double>(spec_.delay_max.ns()))));
    ++stats_.delayed;
  }
  if (spec_.reorder > 0 && rng.next_double() < spec_.reorder) {
    // Enough jitter to overtake back-to-back frames on this profile.
    d.delay += sim::Time(static_cast<std::int64_t>(
        rng.uniform(static_cast<double>(net_latency_.ns()),
                    4.0 * static_cast<double>(net_latency_.ns()))));
    ++stats_.reordered;
  }
  if (spec_.stall > 0 && rng.next_double() < spec_.stall) {
    if (rng.next_double() < 0.5) {
      d.egress_stall = spec_.stall_window;
      ++stats_.egress_stalls;
    } else {
      d.ingress_stall = spec_.stall_window;
      ++stats_.ingress_stalls;
    }
    stats_.stall_time += spec_.stall_window;
  }
  return d;
}

}  // namespace machine
