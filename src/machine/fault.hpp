// Deterministic wire-fault injection (drop / duplicate / corrupt / delay /
// reorder / NIC stall) for the simulated interconnect.
//
// The plan is pure hardware misbehaviour: it perturbs NetMessages inside
// Network::send, below the MPI layer, so every proxy (baseline, iprobe,
// comm-self, offload) sees the *identical* fault schedule for a given seed.
// Determinism does not depend on global event interleaving: each decision is
// drawn from a fresh RNG keyed by (seed, src, dst, per-pair frame counter),
// so the n-th frame a pair ever sends suffers the same fate no matter how
// the proxies reorder traffic between pairs. Retransmitted frames are new
// frames on the wire and roll the dice again (they advance the pair's
// counter), exactly like a real lossy link.
//
// Recovering MPI semantics under these faults is the job of the software
// reliability sublayer in src/mpi/ (see DESIGN.md §10); the plan itself never
// repairs anything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace machine {

/// Per-profile fault configuration. All probabilities are per-frame in
/// [0, 1]; the spec is inert (zero-cost) until `on` is set — either
/// programmatically or by parse().
struct FaultSpec {
  bool on = false;
  double drop = 0.0;     ///< frame lost in the fabric after leaving the NIC
  double dup = 0.0;      ///< frame delivered twice (second copy jittered)
  double corrupt = 0.0;  ///< one bit flipped in payload/header
  double delay = 0.0;    ///< extra delivery jitter in [0, delay_max)
  double reorder = 0.0;  ///< large jitter (1-4x net latency): overtakes peers
  double stall = 0.0;    ///< NIC egress/ingress paused for stall_window
  sim::Time delay_max{20'000};     ///< max extra jitter when `delay` fires
  sim::Time stall_window{50'000};  ///< NIC pause length when `stall` fires
  /// Base of the software retransmit timer (reliability sublayer); the
  /// effective RTO also scales with the unacked backlog and backs off
  /// exponentially.
  sim::Time rto_base{100'000};
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const { return on; }

  /// Parse a spec string (the MPIOFF_FAULTS format), e.g.
  ///   "drop=0.02,dup=0.01,corrupt=0.005,delay=0.1:20us,reorder=0.05,
  ///    stall=0.001:50us,rto=100us,seed=42"
  /// Durations accept ns/us/ms suffixes (bare numbers are ns). Throws
  /// std::invalid_argument on malformed input. The result has on = true.
  static FaultSpec parse(const std::string& spec);
};

/// What the plan decided for one frame. The network applies it mechanically.
struct FaultDecision {
  bool drop = false;
  bool dup = false;
  bool corrupt = false;
  sim::Time delay;          ///< extra fabric jitter before delivery
  sim::Time dup_delay;      ///< jitter of the duplicate copy, relative
  sim::Time egress_stall;   ///< pause of the source NIC before this frame
  sim::Time ingress_stall;  ///< pause of the destination NIC
  std::uint64_t corrupt_bit = 0;  ///< which bit to flip (mod frame size)
};

class FaultPlan {
 public:
  struct Stats {
    std::uint64_t frames = 0;  ///< frames a decision was drawn for
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t reordered = 0;
    std::uint64_t egress_stalls = 0;
    std::uint64_t ingress_stalls = 0;
    sim::Time stall_time;  ///< total NIC pause injected (both directions)
  };

  /// `net_latency` scales the reorder jitter so "overtakes the next frame"
  /// holds on any profile.
  FaultPlan(const FaultSpec& spec, int nranks, sim::Time net_latency);

  /// Draw the fate of the next frame from src to dst. Advances the pair's
  /// frame counter; deterministic in (seed, src, dst, counter) only.
  FaultDecision decide(int src, int dst);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  FaultSpec spec_;
  int nranks_;
  sim::Time net_latency_;
  std::vector<std::uint64_t> pair_ctr_;  ///< frames sent per (src,dst)
  Stats stats_;
};

}  // namespace machine
