// Simulated interconnect.
//
// Model: every rank owns a NIC with one egress and one ingress queue. A
// message departs when the egress link is free, occupies it for
// bytes/bandwidth, traverses the wire (fixed latency), then occupies the
// destination ingress link for bytes/bandwidth before delivery. This
// reproduces the two first-order fabric behaviours the paper's evaluation
// depends on:
//   * per-NIC serialization — alltoall bandwidth per node does not scale
//     with node count (paper Sec. 5.2), incast contends at the receiver;
//   * in-order delivery per (src,dst) pair — MPI's non-overtaking rule.
//
// Crucially the network itself progresses autonomously in virtual time (it
// is hardware), while *software* protocol actions (matching, copies,
// rendezvous handshakes) only happen when a fiber is inside the MPI library.
// That split is what makes the paper's asynchronous-progress problem exist
// in the simulator at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "machine/fault.hpp"
#include "machine/profile.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace machine {

/// A wire-level message. The MPI layer defines the meaning of `kind` and the
/// header words; the network treats them opaquely. The reliability fields
/// (seq/ack/checksum) belong to the software sublayer in src/mpi/ — the
/// network never reads them, it only corrupts frames wholesale.
struct NetMessage {
  int src = -1;
  int dst = -1;
  std::uint32_t kind = 0;
  std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0;  ///< protocol header words
  std::vector<std::byte> payload;                ///< inline (eager) data
  std::size_t wire_bytes = 0;                    ///< bytes charged on the wire
  std::uint64_t seq = 0;       ///< per-(src,dst) sequence number; 0 = unsequenced
  std::uint64_t ack = 0;       ///< cumulative ack: peer received all seq < ack
  std::uint32_t checksum = 0;  ///< frame checksum (see smpi::wire_checksum)
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  using DeliveryHandler = std::function<void(NetMessage&&)>;

  Network(sim::Engine& engine, const Profile& profile, int nranks);

  /// Register the inbox handler for a rank. The handler runs in scheduler
  /// context at delivery time and must not block.
  void set_delivery_handler(int rank, DeliveryHandler handler);

  /// Inject a message. Called from a fiber or scheduler context at the time
  /// the NIC doorbell rings (CPU cost of the doorbell is charged by the
  /// caller). Transmission and delivery are autonomous from this point.
  void send(NetMessage&& msg);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const Profile& profile() const { return profile_; }
  /// Active fault plan, or nullptr when the profile's FaultSpec is disabled.
  [[nodiscard]] const FaultPlan* faults() const { return faults_.get(); }

 private:
  void schedule_delivery(sim::Time when, NetMessage&& msg);

  sim::Engine& engine_;
  Profile profile_;
  int nranks_;
  std::vector<sim::Time> egress_free_;
  std::vector<sim::Time> ingress_free_;
  sim::Time fabric_free_;
  std::vector<DeliveryHandler> handlers_;
  NetworkStats stats_;
  std::unique_ptr<FaultPlan> faults_;
  /// Per-rank cumulative NIC pause, for the nic.stall_ns trace counter.
  std::vector<sim::Time> stall_accum_;
};

}  // namespace machine
