#include "machine/profile.hpp"

namespace machine {

Profile xeon_fdr() {
  Profile p;
  p.name = "xeon_fdr";
  // Defaults in the struct are the Xeon/FDR calibration.
  return p;
}

Profile xeon_phi() {
  Profile p;
  p.name = "xeon_phi";
  p.cores_per_rank = 60;  // 61 cores, one reserved for the OS
  p.numa_domains = 1;     // single-die coprocessor (ring bus, one domain)
  // In-order 1.1 GHz cores: scalar software paths run ~5x slower than the
  // Haswell Xeon, single-thread copy bandwidth is much lower.
  p.copy_bytes_per_ns = 2.0;
  p.mpi_call_overhead = sim::Time(1200);
  p.mpi_match_cost = sim::Time(600);
  p.mpi_progress_poll_cost = sim::Time(400);
  p.rndv_handshake_cpu = sim::Time(1500);
  p.thread_multiple_entry = sim::Time(4500);
  p.big_lock_acquire = sim::Time(600);
  p.big_lock_slice = sim::Time(2000);
  p.net_latency = sim::Time(1500);   // PCIe hop adds latency
  p.net_bytes_per_ns = 5.0;
  p.nic_doorbell = sim::Time(900);
  p.cmd_enqueue = sim::Time(350);    // paper: offload overhead ~1.7 us on Phi
  p.cmd_dequeue = sim::Time(250);
  p.cmd_detect = sim::Time(200);
  p.done_flag_check = sim::Time(100);
  p.done_flag_detect = sim::Time(200);
  p.request_pool_op = sim::Time(75);
  p.cmd_enqueue_batch = sim::Time(150);
  p.mpsc_line_transfer = sim::Time(400);  // slow in-order cores, ring bus
  return p;
}

Profile aries_corespec() {
  Profile p = aries();
  p.name = "aries_corespec";
  p.thread_multiple_entry = sim::Time(500);
  p.big_lock_slice = sim::Time(150);
  p.big_lock_acquire = sim::Time(60);
  return p;
}

Profile aries() {
  Profile p;
  p.name = "aries";
  p.cores_per_rank = 12;  // Edison: dual-socket 12-core IvyBridge, rank/socket
  p.numa_domains = 1;     // rank-per-socket: one domain per rank
  p.net_latency = sim::Time(500);
  p.net_bytes_per_ns = 8.0;
  p.mpi_call_overhead = sim::Time(300);
  return p;
}

}  // namespace machine
