// Deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock, an event queue ordered by
// (time, insertion sequence), and a set of fibers. Exactly one fiber runs at
// a time on the host thread; the engine interleaves them at their explicit
// suspension points. Timed callbacks model autonomous hardware (NIC DMA
// completion, wire delivery) that makes progress without occupying any
// simulated core.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace sim {

/// Statistics the engine keeps about a finished run; useful in tests and for
/// sanity-checking that experiment sizes stay tractable.
struct EngineStats {
  std::uint64_t events_fired = 0;
  std::uint64_t fibers_spawned = 0;
  std::uint64_t context_switches = 0;
};

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine currently executing a fiber on this host thread, or nullptr
  /// when called from outside Engine::run.
  static Engine* current();
  /// The fiber currently executing, or nullptr from scheduler context.
  Fiber* current_fiber() const { return current_fiber_; }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Create a fiber that becomes runnable at the current virtual time.
  Fiber& spawn(std::string name, Fiber::Body body);
  /// Create a fiber that becomes runnable at time `start`.
  Fiber& spawn_at(Time start, std::string name, Fiber::Body body);

  /// Schedule `fn` to run in scheduler context at now()+delay.
  void call_at(Time when, std::function<void()> fn);
  void call_after(Time delay, std::function<void()> fn);

  // ---- Fiber-side API (must be called from a running fiber) ----

  /// Model computation: suspend the calling fiber and resume it `dt` later.
  void advance(Time dt);
  /// Reschedule the calling fiber at the current time, behind already-queued
  /// events (a cooperative yield).
  void yield();
  /// Suspend the calling fiber indefinitely; resumed by unblock().
  void block();
  /// Make a blocked fiber runnable at now()+delay. No-op if not blocked.
  void unblock(Fiber& f, Time delay = Time::zero());

  /// Run until the event queue empties. Returns the final virtual time.
  Time run();
  /// Run until the event queue empties or the clock passes `deadline`.
  Time run_until(Time deadline);

  /// True iff all spawned fibers have completed.
  [[nodiscard]] bool all_fibers_done() const;
  /// Names of fibers that have not finished (for deadlock diagnostics).
  [[nodiscard]] std::vector<std::string> unfinished_fibers() const;

  /// Record an exception thrown by a fiber body; run()/run_until() rethrows
  /// the first captured exception once the event loop stops.
  void capture_exception(std::exception_ptr e);

 private:
  friend class Fiber;

  struct Event {
    Time when;
    std::uint64_t seq;
    Fiber* fiber;                 // non-null: resume this fiber
    std::uint64_t fiber_gen;      // must match fiber->sched_gen_ to be live
    std::function<void()> fn;     // used when fiber == nullptr

    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void schedule_fiber(Fiber& f, Time when);
  void dispatch(Event& ev);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  Fiber* current_fiber_ = nullptr;
  ucontext_t scheduler_ctx_{};
  bool running_ = false;
  std::exception_ptr first_error_;
  EngineStats stats_;
};

/// Convenience accessors for the ambient engine inside fiber code.
inline Time now() { return Engine::current()->now(); }
inline void advance(Time dt) { Engine::current()->advance(dt); }
inline void yield() { Engine::current()->yield(); }

}  // namespace sim
