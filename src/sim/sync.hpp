// Virtual-time synchronization primitives for fibers.
//
// These mirror the semantics of their pthread/OpenMP counterparts but operate
// on the simulated clock:
//  * Mutex       — FIFO fairness, optional acquire cost; models a contended
//                  pthread mutex / MPI "big lock".
//  * CondVar     — wait/notify tied to a Mutex.
//  * Barrier     — OpenMP-style thread-team barrier with per-entry cost.
//  * Notifier    — a monotonically-counted event channel that models a
//                  spin-wait: the waiter observes a new event only after a
//                  configurable detection latency (the spin-poll granularity
//                  of a real polling thread).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "san/san.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace sim {

/// FIFO mutex in virtual time. `hold` costs are modeled by the caller
/// advancing the clock while holding the lock.
class Mutex {
 public:
  explicit Mutex(Time acquire_cost = Time::zero())
      : acquire_cost_(acquire_cost) {}

  /// Acquire; blocks the calling fiber until the mutex is free. Charges
  /// `acquire_cost` of CPU time on every successful acquisition (atomic RMW
  /// plus possible cache-line transfer on real hardware).
  void lock() {
    Engine* e = Engine::current();
    Fiber* self = e->current_fiber();
    if (holder_ != nullptr) {
      waiters_.push_back(self);
      e->block();
      // Ownership is transferred to us by unlock() before we are resumed.
      if (holder_ != self) throw std::logic_error("mutex handoff violated");
    } else {
      holder_ = self;
    }
    san::acquire(this);  // HB edge: everything before the last unlock()
    if (acquire_cost_ > Time::zero()) e->advance(acquire_cost_);
  }

  /// Try to acquire without blocking; charges acquire cost only on success.
  bool try_lock() {
    Engine* e = Engine::current();
    if (holder_ != nullptr) return false;
    holder_ = e->current_fiber();
    san::acquire(this);
    if (acquire_cost_ > Time::zero()) e->advance(acquire_cost_);
    return true;
  }

  void unlock() {
    Engine* e = Engine::current();
    if (holder_ != e->current_fiber()) {
      throw std::logic_error("mutex unlocked by non-holder");
    }
    san::release(this);  // publish the critical section to the next holder
    if (waiters_.empty()) {
      holder_ = nullptr;
    } else {
      Fiber* next = waiters_.front();
      waiters_.pop_front();
      holder_ = next;  // direct handoff keeps FIFO fairness
      e->unblock(*next);
    }
  }

  [[nodiscard]] bool locked() const { return holder_ != nullptr; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Time acquire_cost_;
  Fiber* holder_ = nullptr;
  std::deque<Fiber*> waiters_;
};

/// RAII lock guard for sim::Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable over a sim::Mutex.
class CondVar {
 public:
  void wait(Mutex& m) {
    Engine* e = Engine::current();
    Fiber* self = e->current_fiber();
    waiters_.push_back(self);
    m.unlock();
    e->block();
    m.lock();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    Fiber* f = waiters_.front();
    waiters_.pop_front();
    Engine::current()->unblock(*f);
  }

  void notify_all() {
    while (!waiters_.empty()) notify_one();
  }

 private:
  std::deque<Fiber*> waiters_;
};

/// Team barrier: the `n`-th arriving fiber releases everyone. Each passage
/// charges `entry_cost` (the tree/atomic work of a real barrier).
class Barrier {
 public:
  explicit Barrier(int parties, Time entry_cost = Time::zero())
      : parties_(parties), entry_cost_(entry_cost) {}

  /// Returns the arrival index (0-based) within this generation.
  int arrive_and_wait() {
    Engine* e = Engine::current();
    if (entry_cost_ > Time::zero()) e->advance(entry_cost_);
    // Every arrival joins all earlier arrivals and publishes itself; the
    // releasing unblock()s then carry the joined clock to every waiter, so
    // a barrier is a full HB fence across the team.
    san::acquire(this);
    san::release(this);
    int idx = arrived_++;
    if (arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      for (Fiber* f : waiters_) e->unblock(*f);
      waiters_.clear();
    } else {
      std::uint64_t gen = generation_;
      waiters_.push_back(e->current_fiber());
      e->block();
      if (gen == generation_) throw std::logic_error("spurious barrier wake");
    }
    return idx;
  }

  [[nodiscard]] int parties() const { return parties_; }

 private:
  int parties_;
  Time entry_cost_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<Fiber*> waiters_;
};

/// Event-counting channel modeling a polled flag / doorbell.
///
/// A producer calls signal(); a consumer spin-waiting on the channel is woken
/// `detect_latency` later — the average delay before a real spinning thread's
/// next poll observes the store. wait_for_signal() returns immediately if
/// signals arrived since the consumer's last observation, so no event is ever
/// lost.
class Notifier {
 public:
  explicit Notifier(Time detect_latency = Time::from_ns(30))
      : detect_latency_(detect_latency) {}

  void signal() {
    ++count_;
    san::release(this);  // a poller observing count() acquires this history
    Engine* e = Engine::current();
    for (Fiber* f : waiters_) e->unblock(*f, detect_latency_);
    waiters_.clear();
  }

  /// Current number of signals ever issued; consumers diff against their own
  /// cursor to detect novelty without blocking.
  [[nodiscard]] std::uint64_t count() const {
    san::acquire(this);
    return count_;
  }

  /// Block until count() exceeds `seen`. Returns the new count.
  std::uint64_t wait_beyond(std::uint64_t seen) {
    Engine* e = Engine::current();
    while (count_ <= seen) {
      waiters_.push_back(e->current_fiber());
      e->block();
    }
    san::acquire(this);
    return count_;
  }

  /// Block until count() exceeds `seen` or `timeout` elapses. Returns true
  /// if a signal was observed (count() > seen).
  bool wait_beyond_timeout(std::uint64_t seen, Time timeout) {
    Engine* e = Engine::current();
    if (count_ > seen) {
      san::acquire(this);
      return true;
    }
    Fiber* self = e->current_fiber();
    waiters_.push_back(self);
    auto live = std::make_shared<bool>(true);
    e->call_after(timeout, [e, self, live]() {
      if (*live) e->unblock(*self);
    });
    e->block();
    *live = false;
    // If the timeout (not signal()) woke us, we are still registered.
    std::erase(waiters_, self);
    if (count_ > seen) {
      san::acquire(this);
      return true;
    }
    return false;
  }

  [[nodiscard]] Time detect_latency() const { return detect_latency_; }

 private:
  Time detect_latency_;
  std::uint64_t count_ = 0;
  std::vector<Fiber*> waiters_;
};

}  // namespace sim
