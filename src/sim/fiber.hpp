// Stackful fibers used as simulated hardware threads.
//
// Each fiber owns a private call stack and is cooperatively scheduled by the
// sim::Engine on a single OS thread. Fibers suspend only at explicit points
// (Engine::advance / block / yield), which makes simulated executions fully
// deterministic: interleaving is decided by the virtual-time event queue, not
// by the host scheduler.
//
// Implementation uses POSIX ucontext. It is marked obsolescent by POSIX but
// remains the portable no-dependency way to get stackful coroutines on Linux,
// and is what several production fiber runtimes are built on.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace sim {

class Engine;

/// Lifecycle of a fiber.
enum class FiberState : std::uint8_t {
  kCreated,   ///< spawned but never run
  kRunnable,  ///< scheduled in the event queue
  kRunning,   ///< currently executing on the host thread
  kBlocked,   ///< waiting for an explicit unblock (sync primitive)
  kDone,      ///< body returned
};

/// A cooperatively-scheduled simulated thread.
///
/// Fibers are created through Engine::spawn and owned by the engine; user
/// code only ever sees Fiber& / Fiber*.
class Fiber {
 public:
  using Body = std::function<void()>;

  Fiber(Engine* engine, std::uint64_t id, std::string name, Body body,
        std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] FiberState state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == FiberState::kDone; }

  /// Opaque per-fiber slot the MPI layer uses to attach a rank context.
  void set_user_data(void* p) { user_data_ = p; }
  [[nodiscard]] void* user_data() const { return user_data_; }

  /// Trace process id this fiber's events are attributed to (the simulated
  /// rank; set by whoever spawns the fiber, defaults to 0).
  void set_trace_pid(int pid) { trace_pid_ = pid; }
  [[nodiscard]] int trace_pid() const { return trace_pid_; }

 private:
  friend class Engine;

  /// Switch from the scheduler into this fiber. Returns when the fiber
  /// suspends or finishes.
  void switch_in(ucontext_t* from);
  /// Switch from this fiber back to the scheduler context.
  void switch_out(ucontext_t* to);

  static void trampoline(unsigned int hi, unsigned int lo);
  void run_body();

  Engine* engine_;
  std::uint64_t id_;
  std::uint64_t sched_gen_ = 0;  ///< invalidates stale wake events
  std::string name_;
  Body body_;
  FiberState state_ = FiberState::kCreated;
  void* user_data_ = nullptr;
  int trace_pid_ = 0;

  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
};

}  // namespace sim
