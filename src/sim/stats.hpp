// Small online statistics accumulator used by benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sim {

class Stats {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double sum() const {
    double s = 0;
    for (double v : samples_) s += v;
    return s;
  }
  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// q in [0,1]; nearest-rank on the sorted sample.
  [[nodiscard]] double percentile(double q) {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
    idx = std::min(idx, samples_.size() - 1);
    return samples_[idx];
  }
  [[nodiscard]] double median() { return percentile(0.5); }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    double m = mean(), acc = 0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace sim
