// Deterministic PRNG (splitmix64 / xoshiro256**) for reproducible workloads.
//
// std::mt19937 would also be deterministic, but its state is bulky and its
// distributions are not guaranteed identical across standard libraries; the
// benchmark harnesses want byte-stable workloads across toolchains.
#pragma once

#include <cstdint>

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sim
