#include "sim/engine.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "san/san.hpp"
#include "trace/tracer.hpp"

namespace sim {

namespace {
thread_local Engine* g_current_engine = nullptr;
constexpr std::size_t kDefaultStackBytes = 128 * 1024;
}  // namespace

std::string Time::str() const {
  char buf[64];
  if (ns_ >= 1000000000) {
    std::snprintf(buf, sizeof buf, "%.3fs", sec());
  } else if (ns_ >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else if (ns_ >= 1000) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  }
  return buf;
}

// ---------------------------------------------------------------- Fiber ----

Fiber::Fiber(Engine* engine, std::uint64_t id, std::string name, Body body,
             std::size_t stack_bytes)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    engine_->capture_exception(std::current_exception());
  }
  state_ = FiberState::kDone;
  // Return control to the scheduler permanently.
  swapcontext(&ctx_, &engine_->scheduler_ctx_);
  // Unreachable: a done fiber is never resumed.
  assert(false && "resumed a finished fiber");
}

void Fiber::switch_in(ucontext_t* from) {
  if (state_ == FiberState::kCreated || state_ == FiberState::kRunnable) {
    if (ctx_.uc_stack.ss_sp == nullptr) {
      getcontext(&ctx_);
      ctx_.uc_stack.ss_sp = stack_.get();
      ctx_.uc_stack.ss_size = stack_bytes_;
      ctx_.uc_link = nullptr;
      auto ptr = reinterpret_cast<std::uintptr_t>(this);
      makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                  static_cast<unsigned int>(ptr >> 32),
                  static_cast<unsigned int>(ptr & 0xffffffffu));
    }
  }
  state_ = FiberState::kRunning;
  swapcontext(from, &ctx_);
}

void Fiber::switch_out(ucontext_t* to) { swapcontext(&ctx_, to); }

// --------------------------------------------------------------- Engine ----

Engine::Engine() = default;
Engine::~Engine() = default;

Engine* Engine::current() { return g_current_engine; }

Fiber& Engine::spawn(std::string name, Fiber::Body body) {
  return spawn_at(now_, std::move(name), std::move(body));
}

Fiber& Engine::spawn_at(Time start, std::string name, Fiber::Body body) {
  fibers_.push_back(std::make_unique<Fiber>(this, fibers_.size(),
                                            std::move(name), std::move(body),
                                            kDefaultStackBytes));
  ++stats_.fibers_spawned;
  Fiber& f = *fibers_.back();
  san::on_fork(f.id() + 1, f.name().c_str());
  schedule_fiber(f, start);
  return f;
}

void Engine::call_at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "scheduling into the past");
  san::event_post(next_seq_);  // snapshot the poster's clock under this seq
  events_.push(Event{when, next_seq_++, nullptr, 0, std::move(fn)});
}

void Engine::call_after(Time delay, std::function<void()> fn) {
  call_at(now_ + delay, std::move(fn));
}

void Engine::schedule_fiber(Fiber& f, Time when) {
  assert(when >= now_ && "scheduling into the past");
  f.state_ = FiberState::kRunnable;
  f.sched_gen_ += 1;
  events_.push(Event{when, next_seq_++, &f, f.sched_gen_, nullptr});
}

void Engine::advance(Time dt) {
  Fiber* f = current_fiber_;
  assert(f != nullptr && "advance() called outside a fiber");
  assert(dt >= Time::zero() && "negative advance");
  if (trace::Tracer::on() && dt > Time::zero()) {
    // The fiber occupies its simulated core for [now, now+dt): one complete
    // slice on the fiber's track ("where does the CPU time go").
    trace::Tracer::instance().complete(now_.ns(), dt.ns(), f->trace_pid(),
                                       f->id() + 1, "cpu", "sim");
  }
  schedule_fiber(*f, now_ + dt);
  f->switch_out(&scheduler_ctx_);
}

void Engine::yield() { advance(Time::zero()); }

void Engine::block() {
  Fiber* f = current_fiber_;
  assert(f != nullptr && "block() called outside a fiber");
  f->state_ = FiberState::kBlocked;
  f->switch_out(&scheduler_ctx_);
}

void Engine::unblock(Fiber& f, Time delay) {
  if (f.state_ != FiberState::kBlocked) return;
  san::on_wake(f.id() + 1);  // the waker's history reaches the woken fiber
  schedule_fiber(f, now_ + delay);
}

void Engine::dispatch(Event& ev) {
  now_ = ev.when;
  ++stats_.events_fired;
  if (ev.fiber != nullptr) {
    // A fiber may have been re-scheduled and then blocked again before this
    // event fires; only resume if it is still runnable for this event.
    if (ev.fiber->state_ != FiberState::kRunnable ||
        ev.fiber->sched_gen_ != ev.fiber_gen) {
      return;
    }
    current_fiber_ = ev.fiber;
    ++stats_.context_switches;
    if (trace::Tracer::on()) {
      trace::Tracer::instance().instant(now_.ns(), ev.fiber->trace_pid(),
                                        ev.fiber->id() + 1, "ctx", "sim");
    }
    san::on_switch(ev.fiber->id() + 1, ev.fiber->name().c_str(), now_.ns());
    ev.fiber->switch_in(&scheduler_ctx_);
    current_fiber_ = nullptr;
  } else {
    san::event_fire(ev.seq, now_.ns());
    ev.fn();
  }
}

Time Engine::run() { return run_until(Time::max()); }

Time Engine::run_until(Time deadline) {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  running_ = true;
  Engine* prev = g_current_engine;
  g_current_engine = this;
  while (!events_.empty()) {
    if (events_.top().when > deadline) break;
    // priority_queue::top is const; move out via const_cast, standard trick.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    dispatch(ev);
  }
  g_current_engine = prev;
  running_ = false;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  return now_;
}

void Engine::capture_exception(std::exception_ptr e) {
  if (!first_error_) first_error_ = std::move(e);
}

bool Engine::all_fibers_done() const {
  for (const auto& f : fibers_) {
    if (!f->done()) return false;
  }
  return true;
}

std::vector<std::string> Engine::unfinished_fibers() const {
  std::vector<std::string> out;
  for (const auto& f : fibers_) {
    if (!f->done()) out.push_back(f->name());
  }
  return out;
}

}  // namespace sim
