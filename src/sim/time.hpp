// Virtual time for the discrete-event simulator.
//
// All simulated durations are integer nanoseconds. A strong type (rather
// than a bare int64_t) keeps wall-clock time and virtual time from being
// mixed up, which is an easy and disastrous bug in a simulator that also
// measures real host time in its microbenchmarks.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace sim {

/// A point or span on the virtual clock, in nanoseconds.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(std::numeric_limits<std::int64_t>::max()); }
  static constexpr Time from_ns(std::int64_t v) { return Time(v); }
  static constexpr Time from_us(double v) { return Time(static_cast<std::int64_t>(v * 1e3)); }
  static constexpr Time from_ms(double v) { return Time(static_cast<std::int64_t>(v * 1e6)); }
  static constexpr Time from_sec(double v) { return Time(static_cast<std::int64_t>(v * 1e9)); }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ns_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time(a.ns_ * k); }

  [[nodiscard]] std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Time operator""_ns(unsigned long long v) { return Time(static_cast<std::int64_t>(v)); }
constexpr Time operator""_us(unsigned long long v) { return Time(static_cast<std::int64_t>(v) * 1000); }
constexpr Time operator""_ms(unsigned long long v) { return Time(static_cast<std::int64_t>(v) * 1000000); }
constexpr Time operator""_s(unsigned long long v) { return Time(static_cast<std::int64_t>(v) * 1000000000); }
}  // namespace literals

}  // namespace sim
